// Package analysistest runs spectm analyzers over fixture packages and
// checks their diagnostics against `// want "regex"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under internal/analysis/testdata/src/<name>/…. The
// testdata directory is invisible to `go build ./...` wildcards, but
// the packages inside it are ordinary module packages when named by
// explicit path, so they may import the real spectm/internal/core and
// are type-checked against the real descriptor types — no stubs.
//
// Expectation grammar, one per offending line:
//
//	d.Commit(v) // want "missing Commit/Abort"
//	x() // want "first regex" "second regex"
//
// Every want must be matched by a diagnostic on its line, and every
// diagnostic must be claimed by a want. //lint:ignore directives in
// fixtures are honored, so suppression behavior is testable too.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"spectm/internal/analysis"
)

// wantRe captures the remainder of a `// want …` comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads ./src/<pattern> under dir for each pattern, applies the
// analyzer, and diffs diagnostics against want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var rel []string
	for _, p := range patterns {
		rel = append(rel, "./src/"+p)
	}
	pkgs, err := analysis.Load(abs, rel...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", patterns, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			ws, err := parseWants(pkg, name)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	used := make([]bool, len(diags))
	for _, w := range wants {
		for i, d := range diags {
			if used[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				used[i] = true
				w.matched = true
				break
			}
		}
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", shortPath(w.file), w.line, w.pattern)
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("%s: unexpected diagnostic: %s", shortPath(d.Pos.Filename), d.Message)
		}
	}
}

// parseWants extracts want expectations from one fixture file's
// comments.
func parseWants(pkg *analysis.Package, filename string) ([]*expectation, error) {
	src, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		for rest != "" {
			if rest[0] != '"' {
				return nil, fmt.Errorf("%s:%d: malformed want: expected quoted regexp at %q", filename, i+1, rest)
			}
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: malformed want: %v", filename, i+1, err)
			}
			pat, err := strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", filename, i+1, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp: %v", filename, i+1, err)
			}
			wants = append(wants, &expectation{file: filename, line: i + 1, pattern: re})
			rest = strings.TrimSpace(rest[len(q):])
		}
	}
	return wants, nil
}

func shortPath(p string) string {
	if i := strings.Index(p, "testdata"); i >= 0 {
		return p[i:]
	}
	return p
}
