package mwcas

import (
	"sync"
	"testing"

	"spectm/internal/core"
	"spectm/internal/word"
)

func engines() map[string]core.Config {
	return map[string]core.Config{
		"orec-g": {Layout: core.LayoutOrec, Clock: core.ClockGlobal},
		"orec-l": {Layout: core.LayoutOrec, Clock: core.ClockLocal},
		"tvar-g": {Layout: core.LayoutTVar, Clock: core.ClockGlobal},
		"val":    {Layout: core.LayoutVal},
	}
}

func iv(u uint64) word.Value { return word.FromUint(u) }

func stressIters(t *testing.T, full int) int {
	if testing.Short() {
		return full / 10
	}
	return full
}

func TestDCSSSemantics(t *testing.T) {
	for name, cfg := range engines() {
		t.Run(name, func(t *testing.T) {
			e := core.New(cfg)
			thr := e.Register()
			a1, a2 := e.NewVar(iv(1)), e.NewVar(iv(2))
			if !DCSS(thr, a1, a2, iv(1), iv(2), iv(10)) {
				t.Fatal("matching DCSS failed")
			}
			if thr.SingleRead(a1) != iv(10) || thr.SingleRead(a2) != iv(2) {
				t.Fatal("DCSS wrote wrong state")
			}
			if DCSS(thr, a1, a2, iv(1), iv(2), iv(11)) {
				t.Fatal("stale DCSS succeeded")
			}
			if DCSS(thr, a1, a2, iv(10), iv(3), iv(11)) {
				t.Fatal("DCSS with wrong second expectation succeeded")
			}
			if thr.SingleRead(a1) != iv(10) {
				t.Fatal("failed DCSS mutated memory")
			}
		})
	}
}

func TestCASNSemantics(t *testing.T) {
	for name, cfg := range engines() {
		t.Run(name, func(t *testing.T) {
			e := core.New(cfg)
			thr := e.Register()
			a1, a2, a3 := e.NewVar(iv(1)), e.NewVar(iv(2)), e.NewVar(iv(3))
			a4 := e.NewVar(iv(4))

			if !CAS2(thr, a1, a2, iv(1), iv(2), iv(10), iv(20)) {
				t.Fatal("CAS2 failed")
			}
			if thr.SingleRead(a1) != iv(10) || thr.SingleRead(a2) != iv(20) {
				t.Fatal("CAS2 state wrong")
			}
			if CAS2(thr, a1, a2, iv(1), iv(20), iv(0), iv(0)) {
				t.Fatal("stale CAS2 succeeded")
			}

			if !CAS3(thr, a1, a2, a3, iv(10), iv(20), iv(3), iv(11), iv(21), iv(31)) {
				t.Fatal("CAS3 failed")
			}
			if thr.SingleRead(a3) != iv(31) {
				t.Fatal("CAS3 state wrong")
			}
			if CAS3(thr, a1, a2, a3, iv(10), iv(21), iv(31), iv(0), iv(0), iv(0)) {
				t.Fatal("stale CAS3 succeeded")
			}

			if !CAS4(thr,
				[4]core.Var{a1, a2, a3, a4},
				[4]word.Value{iv(11), iv(21), iv(31), iv(4)},
				[4]word.Value{iv(12), iv(22), iv(32), iv(42)}) {
				t.Fatal("CAS4 failed")
			}
			if thr.SingleRead(a4) != iv(42) {
				t.Fatal("CAS4 state wrong")
			}
			if CAS4(thr,
				[4]core.Var{a1, a2, a3, a4},
				[4]word.Value{iv(12), iv(22), iv(32), iv(41)},
				[4]word.Value{iv(0), iv(0), iv(0), iv(0)}) {
				t.Fatal("stale CAS4 succeeded")
			}
		})
	}
}

func TestKCSSSemantics(t *testing.T) {
	for name, cfg := range engines() {
		t.Run(name, func(t *testing.T) {
			e := core.New(cfg)
			thr := e.Register()
			a := e.NewVar(iv(1))
			b := e.NewVar(iv(2))
			c := e.NewVar(iv(3))
			d := e.NewVar(iv(4))

			if !KCSS(thr, []core.Var{a, b}, []word.Value{iv(1), iv(2)}, iv(9)) {
				t.Fatal("2-KCSS failed")
			}
			if thr.SingleRead(a) != iv(9) || thr.SingleRead(b) != iv(2) {
				t.Fatal("2-KCSS state wrong: only the first location may change")
			}
			if KCSS(thr, []core.Var{a, b}, []word.Value{iv(1), iv(2)}, iv(5)) {
				t.Fatal("stale KCSS succeeded")
			}
			if !KCSS(thr, []core.Var{a, b, c, d}, []word.Value{iv(9), iv(2), iv(3), iv(4)}, iv(10)) {
				t.Fatal("4-KCSS failed")
			}
			if thr.SingleRead(a) != iv(10) {
				t.Fatal("4-KCSS did not write")
			}
			if KCSS(thr, []core.Var{a, b, c, d}, []word.Value{iv(10), iv(2), iv(3), iv(5)}, iv(11)) {
				t.Fatal("4-KCSS with one mismatch succeeded")
			}
		})
	}
}

func TestKCSSBadArityPanics(t *testing.T) {
	e := core.New(core.Config{Layout: core.LayoutTVar})
	thr := e.Register()
	a := e.NewVar(iv(1))
	defer func() {
		if recover() == nil {
			t.Fatal("1-location KCSS must panic")
		}
	}()
	KCSS(thr, []core.Var{a}, []word.Value{iv(1)}, iv(2))
}

// TestCAS2Atomicity: concurrent CAS2-based transfers preserve the sum,
// and a DCSS-guarded flag is respected.
func TestCAS2Atomicity(t *testing.T) {
	for name, cfg := range engines() {
		t.Run(name, func(t *testing.T) {
			e := core.New(cfg)
			const workers = 4
			iters := stressIters(t, 3000)
			a, b := e.NewVar(iv(10000)), e.NewVar(iv(10000))
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					thr := e.Register()
					for i := 0; i < iters; i++ {
						for {
							x := thr.SingleRead(a)
							y := thr.SingleRead(b)
							if x.Uint() == 0 {
								break
							}
							if CAS2(thr, a, b, x, y, iv(x.Uint()-1), iv(y.Uint()+1)) {
								break
							}
						}
					}
				}()
			}
			wg.Wait()
			thr := e.Register()
			sum := thr.SingleRead(a).Uint() + thr.SingleRead(b).Uint()
			if sum != 20000 {
				t.Fatalf("sum = %d, want 20000", sum)
			}
		})
	}
}

// TestDCSSGuardedCounter: DCSS increments a counter only while a guard
// flag is set; after the guard clears, no increment may slip in.
func TestDCSSGuardedCounter(t *testing.T) {
	e := core.New(core.Config{Layout: core.LayoutVal})
	guard := e.NewVar(iv(1)) // 1 = open
	counter := e.NewVar(iv(0))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := e.Register()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := thr.SingleRead(counter)
				DCSS(thr, counter, guard, c, iv(1), iv(c.Uint()+1))
			}
		}()
	}
	closer := e.Register()
	for closer.SingleRead(counter).Uint() < 100 {
	}
	closer.SingleWrite(guard, iv(0))
	close(stop)
	wg.Wait()
	// All workers quiesced and the guard is closed: the counter must be
	// stable and further guarded increments must fail.
	final := closer.SingleRead(counter)
	if final.Uint() < 100 {
		t.Fatalf("counter only reached %d", final.Uint())
	}
	if DCSS(closer, counter, guard, final, iv(1), iv(final.Uint()+1)) {
		t.Fatal("DCSS succeeded against a closed guard")
	}
	if got := closer.SingleRead(counter); got != final {
		t.Fatalf("counter moved from %d to %d after quiescence", final.Uint(), got.Uint())
	}
}
