// Package mwcas builds classical multi-word synchronization primitives
// over SpecTM's short transactions, demonstrating the paper's claim that
// "it is easy to implement CASN over short transactions" (§5):
//
//   - DCSS — double-compare-single-swap, the paper's own §2.2 example,
//     expressed with read-only reads, an upgrade, and a combined commit;
//   - CAS2/CAS3/CAS4 — multi-word compare-and-swap via short RW
//     transactions (encounter-time locking, values supplied at commit);
//   - KCSS — k-compare-single-swap (Luchangco et al., as cited in §5)
//     for k ≤ 4: compare k locations, swap the first.
//
// Unlike historical CASN designs, these compose with every other
// transaction on the same engine because they share its meta-data. All
// of them are written against the typed descriptor API; the CASn family
// is just a DoRWn combinator with an equality body.
package mwcas

import (
	"spectm/internal/core"
	"spectm/internal/word"
)

// DCSS checks that a1 and a2 hold o1 and o2; if so it stores n1 into a1.
// It returns whether the swap happened. This follows the paper's DCSS
// pseudo-code: two read-only reads, an upgrade of the first, and a
// combined commit that validates both reads under the lock.
func DCSS(t *core.Thr, a1, a2 core.Var, o1, o2, n1 word.Value) bool {
	for {
		d1, x1 := t.ShortRO1(a1)
		d2, x2 := d1.Extend(a2)
		if x1 == o1 && x2 == o2 {
			if c, ok := d2.Upgrade1(); ok && c.Commit(n1) {
				return true
			}
			continue // conflict during upgrade or commit: restart
		}
		if d2.Valid() {
			return false // values genuinely differ
		}
		// Conflict: restart.
	}
}

// CAS2 atomically replaces (o1,o2) with (n1,n2) at (a1,a2) when both
// match; it returns whether the swap happened.
func CAS2(t *core.Thr, a1, a2 core.Var, o1, o2, n1, n2 word.Value) bool {
	return core.DoRW2(t, a1, a2, func(x1, x2 word.Value) (word.Value, word.Value, bool) {
		return n1, n2, x1 == o1 && x2 == o2
	})
}

// CAS3 is the 3-location analogue of CAS2.
func CAS3(t *core.Thr, a1, a2, a3 core.Var, o1, o2, o3, n1, n2, n3 word.Value) bool {
	return core.DoRW3(t, a1, a2, a3,
		func(x1, x2, x3 word.Value) (word.Value, word.Value, word.Value, bool) {
			return n1, n2, n3, x1 == o1 && x2 == o2 && x3 == o3
		})
}

// CAS4 is the 4-location analogue of CAS2.
func CAS4(t *core.Thr, a [4]core.Var, o, n [4]word.Value) bool {
	return core.DoRW4(t, a[0], a[1], a[2], a[3],
		func(x1, x2, x3, x4 word.Value) (word.Value, word.Value, word.Value, word.Value, bool) {
			return n[0], n[1], n[2], n[3],
				x1 == o[0] && x2 == o[1] && x3 == o[2] && x4 == o[3]
		})
}

// KCSS compares the locations addrs (2 ≤ len ≤ 4) against olds and, when
// all match, stores n1 into addrs[0]. Only the first location is
// written; the rest are validated read-only, so concurrent readers of
// those locations are never blocked.
func KCSS(t *core.Thr, addrs []core.Var, olds []word.Value, n1 word.Value) bool {
	if len(addrs) != len(olds) || len(addrs) < 2 || len(addrs) > core.MaxShort {
		panic("mwcas: KCSS needs 2..4 matching locations and expectations")
	}
	switch len(addrs) {
	case 2:
		return DCSS(t, addrs[0], addrs[1], olds[0], olds[1], n1)
	case 3:
		return kcss3(t, addrs, olds, n1)
	default:
		return kcss4(t, addrs, olds, n1)
	}
}

func kcss3(t *core.Thr, addrs []core.Var, olds []word.Value, n1 word.Value) bool {
	for {
		d, x1, x2, x3 := t.ShortRO3(addrs[0], addrs[1], addrs[2])
		if x1 == olds[0] && x2 == olds[1] && x3 == olds[2] {
			if c, ok := d.Upgrade1(); ok && c.Commit(n1) {
				return true
			}
			continue
		}
		if d.Valid() {
			return false
		}
	}
}

func kcss4(t *core.Thr, addrs []core.Var, olds []word.Value, n1 word.Value) bool {
	for {
		d, x1, x2, x3, x4 := t.ShortRO4(addrs[0], addrs[1], addrs[2], addrs[3])
		if x1 == olds[0] && x2 == olds[1] && x3 == olds[2] && x4 == olds[3] {
			if c, ok := d.Upgrade1(); ok && c.Commit(n1) {
				return true
			}
			continue
		}
		if d.Valid() {
			return false
		}
	}
}
