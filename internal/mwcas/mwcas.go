// Package mwcas builds classical multi-word synchronization primitives
// over SpecTM's short transactions, demonstrating the paper's claim that
// "it is easy to implement CASN over short transactions" (§5):
//
//   - DCSS — double-compare-single-swap, the paper's own §2.2 example,
//     expressed with read-only reads, an upgrade, and a combined commit;
//   - CAS2/CAS3/CAS4 — multi-word compare-and-swap via short RW
//     transactions (encounter-time locking, values supplied at commit);
//   - KCSS — k-compare-single-swap (Luchangco et al., as cited in §5)
//     for k ≤ 4: compare k locations, swap the first.
//
// Unlike historical CASN designs, these compose with every other
// transaction on the same engine because they share its meta-data.
package mwcas

import (
	"spectm/internal/core"
	"spectm/internal/word"
)

// DCSS checks that a1 and a2 hold o1 and o2; if so it stores n1 into a1.
// It returns whether the swap happened. This follows the paper's DCSS
// pseudo-code line by line.
func DCSS(t *core.Thr, a1, a2 core.Var, o1, o2, n1 word.Value) bool {
	for {
		if t.RORead1(a1) == o1 && t.RORead2(a2) == o2 && t.UpgradeRO1ToRW1() {
			if t.CommitRO2RW1(n1) {
				return true
			}
		} else if t.ROValid2() {
			return false
		}
		// Conflict: restart.
	}
}

// CAS2 atomically replaces (o1,o2) with (n1,n2) at (a1,a2) when both
// match; it returns whether the swap happened.
func CAS2(t *core.Thr, a1, a2 core.Var, o1, o2, n1, n2 word.Value) bool {
	for attempt := 1; ; attempt++ {
		x1 := t.RWRead1(a1)
		x2 := t.RWRead2(a2)
		if !t.RWValid2() {
			t.Backoff(attempt)
			continue
		}
		if x1 != o1 || x2 != o2 {
			t.RWAbort2()
			return false
		}
		t.RWCommit2(n1, n2)
		return true
	}
}

// CAS3 is the 3-location analogue of CAS2.
func CAS3(t *core.Thr, a1, a2, a3 core.Var, o1, o2, o3, n1, n2, n3 word.Value) bool {
	for attempt := 1; ; attempt++ {
		x1 := t.RWRead1(a1)
		x2 := t.RWRead2(a2)
		x3 := t.RWRead3(a3)
		if !t.RWValid3() {
			t.Backoff(attempt)
			continue
		}
		if x1 != o1 || x2 != o2 || x3 != o3 {
			t.RWAbort3()
			return false
		}
		t.RWCommit3(n1, n2, n3)
		return true
	}
}

// CAS4 is the 4-location analogue of CAS2.
func CAS4(t *core.Thr, a [4]core.Var, o, n [4]word.Value) bool {
	for attempt := 1; ; attempt++ {
		x0 := t.RWRead1(a[0])
		x1 := t.RWRead2(a[1])
		x2 := t.RWRead3(a[2])
		x3 := t.RWRead4(a[3])
		if !t.RWValid4() {
			t.Backoff(attempt)
			continue
		}
		if x0 != o[0] || x1 != o[1] || x2 != o[2] || x3 != o[3] {
			t.RWAbort4()
			return false
		}
		t.RWCommit4(n[0], n[1], n[2], n[3])
		return true
	}
}

// KCSS compares the locations addrs (2 ≤ len ≤ 4) against olds and, when
// all match, stores n1 into addrs[0]. Only the first location is
// written; the rest are validated read-only, so concurrent readers of
// those locations are never blocked.
func KCSS(t *core.Thr, addrs []core.Var, olds []word.Value, n1 word.Value) bool {
	if len(addrs) != len(olds) || len(addrs) < 2 || len(addrs) > core.MaxShort {
		panic("mwcas: KCSS needs 2..4 matching locations and expectations")
	}
	for {
		match := true
		x := t.RORead1(addrs[0])
		match = match && x == olds[0]
		if len(addrs) >= 2 {
			match = match && t.RORead2(addrs[1]) == olds[1]
		}
		if len(addrs) >= 3 {
			match = match && t.RORead3(addrs[2]) == olds[2]
		}
		if len(addrs) >= 4 {
			match = match && t.RORead4(addrs[3]) == olds[3]
		}
		if match && t.UpgradeRO1ToRW1() {
			var ok bool
			switch len(addrs) {
			case 2:
				ok = t.CommitRO2RW1(n1)
			case 3:
				ok = t.CommitRO3RW1(n1)
			default:
				ok = t.CommitRO4RW1(n1)
			}
			if ok {
				return true
			}
			continue // conflict during commit: restart
		}
		var valid bool
		switch len(addrs) {
		case 2:
			valid = t.ROValid2()
		case 3:
			valid = t.ROValid3()
		default:
			valid = t.ROValid4()
		}
		if valid {
			return false // values genuinely differ
		}
		// Conflict: restart.
	}
}
