// Package btree implements the data structure the paper names as future
// work ("structures such as B-Trees which are more complex than those
// studied in typical research on lock-free algorithms", §6) in SpecTM
// style: the common operations — leaf lookups, inserts, updates and
// deletes — are short transactions of 2–3 statically known locations,
// while the rare structural changes (leaf and interior splits, root
// growth) fall back to ordinary transactions on the same engine.
//
// The design is a B-link tree (Lehman–Yao):
//
//   - Every node carries a version cell. Mutators lock it with the first
//     read of a short RW transaction (or write it inside a split's full
//     transaction), so per-node mutations are serialized; readers
//     bracket their scans with two version reads, a seqlock realized
//     entirely with Tx_Single_Reads. Versions increase monotonically, so
//     value-based validation is sound even on the val layout.
//   - Every node carries a fence key and a right-sibling link. A reader
//     or writer that reaches a node no longer covering its key follows
//     the sibling chain, which makes stale navigations self-repairing
//     and lets splits commit without touching readers.
//   - Leaf key slots are unsorted, so an insert is exactly two writes
//     (version, slot) plus one for the value — within the short API's
//     four-location budget. Interior nodes stay sorted; they are only
//     rewritten inside split transactions.
//   - Nodes are never reclaimed (splits keep the left half in place, and
//     deletes leave slots empty), so the tree needs no epoch protection.
package btree

import (
	"fmt"

	"spectm/internal/arena"
	"spectm/internal/core"
	"spectm/internal/word"
)

const (
	// LeafSlots is the number of unsorted key/value slots per leaf.
	LeafSlots = 8
	// Fanout is the maximum number of separator keys per interior node.
	Fanout = 8

	idTreeBase = uint64(1) << 55
)

// node is one B-link node. leaf and level are immutable after
// construction (level 0 = leaves); all other state lives in
// transactional cells.
type node struct {
	leaf  bool
	level int32
	ver   core.Cell // mutation version; locked by every mutator
	cnt   core.Cell // interior: number of separator keys
	high  core.Cell // fence: encoded key+1 bound, Null = +infinity
	next  core.Cell // right sibling handle, Null at the rightmost node
	keys  [Fanout]core.Cell
	vals  [Fanout + 1]core.Cell // leaf: values; interior: child handles
}

// Tree is a concurrent uint64→uint64 map.
type Tree struct {
	e    *core.Engine
	a    *arena.Arena[node]
	root core.Cell
}

// New creates an empty tree on engine e.
func New(e *core.Engine) *Tree {
	t := &Tree{e: e, a: arena.New[node]()}
	h, n := t.a.Alloc()
	t.initNode(n, true)
	t.root.Init(enc(h))
	return t
}

func enc(h arena.Handle) word.Value { return word.FromUint(uint64(h)) }
func dec(v word.Value) arena.Handle { return arena.Handle(v.Uint()) }
func encKey(k uint64) word.Value    { return word.FromUint(k + 1) }
func decKey(v word.Value) uint64    { return v.Uint() - 1 }
func encVal(v uint64) word.Value    { return word.FromUint(v) }

func (t *Tree) initNode(n *node, leaf bool) {
	n.leaf = leaf
	n.level = 0
	n.ver.Init(word.FromUint(1))
	n.cnt.Init(word.Null)
	n.high.Init(word.Null)
	n.next.Init(word.Null)
	for i := range n.keys {
		n.keys[i].Init(word.Null)
	}
	for i := range n.vals {
		n.vals[i].Init(word.Null)
	}
}

// Cell identities for orec hashing: handle << 6 | field index.
func (t *Tree) cellVar(h arena.Handle, c *core.Cell, field uint64) core.Var {
	return t.e.VarOf(c, idTreeBase|uint64(h)<<6|field)
}

func (t *Tree) verVar(h arena.Handle, n *node) core.Var  { return t.cellVar(h, &n.ver, 0) }
func (t *Tree) cntVar(h arena.Handle, n *node) core.Var  { return t.cellVar(h, &n.cnt, 1) }
func (t *Tree) highVar(h arena.Handle, n *node) core.Var { return t.cellVar(h, &n.high, 2) }
func (t *Tree) nextVar(h arena.Handle, n *node) core.Var { return t.cellVar(h, &n.next, 3) }
func (t *Tree) keyVar(h arena.Handle, n *node, i int) core.Var {
	return t.cellVar(h, &n.keys[i], 4+uint64(i))
}
func (t *Tree) valVar(h arena.Handle, n *node, i int) core.Var {
	return t.cellVar(h, &n.vals[i], 4+Fanout+uint64(i))
}
func (t *Tree) rootVar() core.Var { return t.e.VarOf(&t.root, idTreeBase) }

// Thread is a per-worker handle.
type Thread struct {
	t  *Tree
	th *core.Thr
}

// NewThread registers a worker.
func (t *Tree) NewThread() *Thread { return &Thread{t: t, th: t.e.Register()} }

// Thr exposes the engine thread (stats).
func (x *Thread) Thr() *core.Thr { return x.th }

// covers reports whether key falls below the node's fence.
func covers(high word.Value, key uint64) bool {
	return high.IsNull() || key+1 < high.Uint()
}

// descend walks from the root to the leaf responsible for key, following
// sibling links across concurrent splits. Interior scans are seqlocked
// on the node version.
func (x *Thread) descend(key uint64) arena.Handle {
	tr := x.t
	th := x.th
restart:
	h := dec(th.SingleRead(tr.rootVar()))
	for {
		n := tr.a.Get(h)
		if n.leaf {
			return h
		}
		v1 := th.SingleRead(tr.verVar(h, n))
		high := th.SingleRead(tr.highVar(h, n))
		if !covers(high, key) {
			nxt := th.SingleRead(tr.nextVar(h, n))
			if th.SingleRead(tr.verVar(h, n)) != v1 {
				goto restart
			}
			if nxt.IsNull() {
				goto restart
			}
			h = dec(nxt)
			continue
		}
		cnt := int(th.SingleRead(tr.cntVar(h, n)).Uint())
		if cnt > Fanout {
			goto restart // torn read of a node mid-rewrite
		}
		// Sorted separators: child i covers keys < keys[i].
		child := word.Null
		idx := cnt
		for i := 0; i < cnt; i++ {
			kv := th.SingleRead(tr.keyVar(h, n, i))
			if kv.IsNull() {
				goto restart
			}
			if key < decKey(kv) {
				idx = i
				break
			}
		}
		child = th.SingleRead(tr.valVar(h, n, idx))
		if th.SingleRead(tr.verVar(h, n)) != v1 {
			goto restart
		}
		if child.IsNull() {
			goto restart
		}
		h = dec(child)
	}
}

// leafFor returns the leaf currently covering key, following fences.
// The returned snapshot fields are only advisory; mutators re-validate
// under the version lock.
func (x *Thread) leafFor(key uint64) arena.Handle {
	tr := x.t
	th := x.th
	h := x.descend(key)
	for {
		n := tr.a.Get(h)
		v1 := th.SingleRead(tr.verVar(h, n))
		high := th.SingleRead(tr.highVar(h, n))
		nxt := th.SingleRead(tr.nextVar(h, n))
		if th.SingleRead(tr.verVar(h, n)) != v1 {
			continue
		}
		if covers(high, key) {
			return h
		}
		if nxt.IsNull() {
			// A fence without a sibling is transient mid-split state;
			// re-descend.
			h = x.descend(key)
			continue
		}
		h = dec(nxt)
	}
}

// Get returns the value stored for key.
func (x *Thread) Get(key uint64) (uint64, bool) {
	tr := x.t
	th := x.th
	for {
		h := x.leafFor(key)
		n := tr.a.Get(h)
		v1 := th.SingleRead(tr.verVar(h, n))
		if !covers(th.SingleRead(tr.highVar(h, n)), key) {
			continue // split raced in; re-navigate
		}
		var val word.Value
		found := false
		for i := 0; i < LeafSlots; i++ {
			kv := th.SingleRead(tr.keyVar(h, n, i))
			if kv == encKey(key) {
				val = th.SingleRead(tr.valVar(h, n, i))
				found = true
				break
			}
		}
		if th.SingleRead(tr.verVar(h, n)) != v1 {
			continue // seqlock failed; rescan
		}
		if !found {
			return 0, false
		}
		return val.Uint(), true
	}
}

// Put inserts or updates key→val. It reports whether the key was new.
func (x *Thread) Put(key, val uint64) bool {
	if val > word.MaxPayload {
		panic(fmt.Sprintf("btree: value %d out of range", val))
	}
	tr := x.t
	th := x.th
	for attempt := 1; ; attempt++ {
		h := x.leafFor(key)
		n := tr.a.Get(h)
		// Lock the leaf: first read of a short RW transaction.
		d1, v := th.ShortRW1(tr.verVar(h, n))
		if !d1.Valid() {
			th.Backoff(attempt)
			continue
		}
		// The leaf is stable now; plain single reads below cannot race
		// with other mutators.
		if !covers(th.SingleRead(tr.highVar(h, n)), key) {
			d1.Abort() // split moved our key range; re-navigate
			continue
		}
		free := -1
		slot := -1
		for i := 0; i < LeafSlots; i++ {
			kv := th.SingleRead(tr.keyVar(h, n, i))
			if kv == encKey(key) {
				slot = i
				break
			}
			if kv.IsNull() && free < 0 {
				free = i
			}
		}
		switch {
		case slot >= 0:
			// Update: version + value, a 2-location short transaction.
			d2, _ := d1.Extend(tr.valVar(h, n, slot))
			if !d2.Valid() {
				th.Backoff(attempt)
				continue
			}
			d2.Commit(word.FromUint(v.Uint()+1), encVal(val))
			return false
		case free >= 0:
			// Insert: version + key slot + value slot (3 locations).
			d2, _ := d1.Extend(tr.keyVar(h, n, free))
			d3, _ := d2.Extend(tr.valVar(h, n, free))
			if !d3.Valid() {
				th.Backoff(attempt)
				continue
			}
			d3.Commit(word.FromUint(v.Uint()+1), encKey(key), encVal(val))
			return true
		default:
			// Full leaf: release and split with an ordinary transaction.
			d1.Abort()
			x.splitLeaf(h)
		}
	}
}

// Delete removes key; false if absent. Slots simply empty out — B-link
// trees need no merging for correctness.
func (x *Thread) Delete(key uint64) bool {
	tr := x.t
	th := x.th
	for attempt := 1; ; attempt++ {
		h := x.leafFor(key)
		n := tr.a.Get(h)
		d1, v := th.ShortRW1(tr.verVar(h, n))
		if !d1.Valid() {
			th.Backoff(attempt)
			continue
		}
		if !covers(th.SingleRead(tr.highVar(h, n)), key) {
			d1.Abort()
			continue
		}
		slot := -1
		for i := 0; i < LeafSlots; i++ {
			if th.SingleRead(tr.keyVar(h, n, i)) == encKey(key) {
				slot = i
				break
			}
		}
		if slot < 0 {
			d1.Abort()
			return false
		}
		d2, _ := d1.Extend(tr.keyVar(h, n, slot))
		d3, _ := d2.Extend(tr.valVar(h, n, slot))
		if !d3.Valid() {
			th.Backoff(attempt)
			continue
		}
		d3.Commit(word.FromUint(v.Uint()+1), word.Null, word.Null)
		return true
	}
}
