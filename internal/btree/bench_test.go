package btree

import (
	"sync/atomic"
	"testing"

	"spectm/internal/core"
	"spectm/internal/rng"
)

func benchTree(b *testing.B, cfg core.Config, keys uint64) *Tree {
	b.Helper()
	tr := New(core.New(cfg))
	th := tr.NewThread()
	for k := uint64(0); k < keys; k += 2 {
		th.Put(k, k)
	}
	return tr
}

func benchEngines() []struct {
	name string
	cfg  core.Config
} {
	return []struct {
		name string
		cfg  core.Config
	}{
		{"tvar-g", core.Config{Layout: core.LayoutTVar, Clock: core.ClockGlobal}},
		{"val", core.Config{Layout: core.LayoutVal}},
	}
}

func BenchmarkGet(b *testing.B) {
	for _, e := range benchEngines() {
		b.Run(e.name, func(b *testing.B) {
			tr := benchTree(b, e.cfg, 1<<16)
			var seed atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				th := tr.NewThread()
				r := rng.New(seed.Add(1))
				for pb.Next() {
					th.Get(r.Intn(1 << 16))
				}
			})
		})
	}
}

func BenchmarkPutGetMix(b *testing.B) {
	for _, e := range benchEngines() {
		b.Run(e.name, func(b *testing.B) {
			tr := benchTree(b, e.cfg, 1<<16)
			var seed atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				th := tr.NewThread()
				r := rng.New(seed.Add(1))
				for pb.Next() {
					k := r.Intn(1 << 16)
					switch r.Intn(10) {
					case 0:
						th.Put(k, k)
					case 1:
						th.Delete(k)
					default:
						th.Get(k)
					}
				}
			})
		})
	}
}
