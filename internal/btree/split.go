// Structural changes: the rare path, expressed as ordinary transactions.
// A B-link split is two independent atomic steps — (1) split the node and
// link the right sibling, (2) post the separator into the parent level —
// and the tree is fully consistent between them because traversals
// follow sibling links (Lehman–Yao).
//
// Separator posting is positional, not parental: the poster descends by
// the separator key (following fences) to the node one level above the
// split and inserts (sep, right) at the separator's sorted position.
// Identity-based parent search would livelock: a node whose own
// separator is still unposted is reachable only through sibling links,
// never through a parent pointer.
package btree

import (
	"sort"

	"spectm/internal/arena"
	"spectm/internal/word"
)

// splitLeaf splits the full leaf h and posts the separator upward. It is
// a no-op if a concurrent split already made room.
func (x *Thread) splitLeaf(h arena.Handle) {
	tr := x.t
	th := x.th
	n := tr.a.Get(h)

	type kv struct{ k, v word.Value }
	var sep uint64
	var rightH arena.Handle

	for attempt := 1; ; attempt++ {
		th.TxStart()
		v := th.TxRead(tr.verVar(h, n))
		var items []kv
		for i := 0; i < LeafSlots; i++ {
			k := th.TxRead(tr.keyVar(h, n, i))
			if !k.IsNull() {
				items = append(items, kv{k, th.TxRead(tr.valVar(h, n, i))})
			}
		}
		if !th.TxOK() {
			th.TxCommit()
			th.Backoff(attempt)
			continue
		}
		if len(items) < LeafSlots {
			th.TxAbort() // someone made room already
			if !rightH.IsNil() {
				tr.a.Free(rightH) // never published
			}
			return
		}
		sort.Slice(items, func(a, b int) bool { return items[a].k < items[b].k })
		mid := len(items) / 2
		sep = decKey(items[mid].k)
		moved := items[mid:]

		// Build the right sibling privately.
		if rightH.IsNil() {
			var rn *node
			rightH, rn = tr.a.Alloc()
			tr.initNode(rn, true)
		}
		rn := tr.a.Get(rightH)
		tr.initNode(rn, true)
		for i, it := range moved {
			rn.keys[i].Init(it.k)
			rn.vals[i].Init(it.v)
		}
		rn.high.Init(th.TxRead(tr.highVar(h, n)))
		rn.next.Init(th.TxRead(tr.nextVar(h, n)))
		if !th.TxOK() {
			th.TxCommit()
			th.Backoff(attempt)
			continue
		}

		// Rewrite the left half: clear moved slots, set fence + link.
		for i := 0; i < LeafSlots; i++ {
			k := th.TxRead(tr.keyVar(h, n, i))
			if !k.IsNull() && decKey(k) >= sep {
				th.TxWrite(tr.keyVar(h, n, i), word.Null)
				th.TxWrite(tr.valVar(h, n, i), word.Null)
			}
		}
		th.TxWrite(tr.highVar(h, n), encKey(sep))
		th.TxWrite(tr.nextVar(h, n), enc(rightH))
		th.TxWrite(tr.verVar(h, n), word.FromUint(v.Uint()+1))
		if th.TxCommit() {
			break
		}
		th.Backoff(attempt)
	}
	x.postSeparator(h, rightH, sep, 0)
}

// postSeparator inserts (sep, right) at the level above childLevel,
// growing the root or splitting full ancestors as needed. left is the
// node that was split (used only to validate root growth).
func (x *Thread) postSeparator(left, right arena.Handle, sep uint64, childLevel int32) {
	th := x.th
	for attempt := 1; ; attempt++ {
		parent, atRoot := x.hostFor(sep, childLevel)
		if atRoot {
			if x.growRoot(left, right, sep) {
				return
			}
			th.Backoff(attempt)
			continue
		}
		switch x.insertSeparator(parent, right, sep) {
		case sepDone:
			return
		case sepParentFull:
			x.splitInterior(parent)
		case sepRetry:
			th.Backoff(attempt)
		}
	}
}

// hostFor descends by key toward sep, following fences, and returns the
// node at childLevel+1 that covers sep. atRoot reports that the root
// itself sits at childLevel, so the tree must grow first.
func (x *Thread) hostFor(sep uint64, childLevel int32) (arena.Handle, bool) {
	tr := x.t
	th := x.th
restart:
	h := dec(th.SingleRead(tr.rootVar()))
	if tr.a.Get(h).level == childLevel {
		return 0, true
	}
	for {
		n := tr.a.Get(h)
		if n.level <= childLevel {
			// The tree changed shape under us; start over.
			goto restart
		}
		v1 := th.SingleRead(tr.verVar(h, n))
		if !covers(th.SingleRead(tr.highVar(h, n)), sep) {
			nxt := th.SingleRead(tr.nextVar(h, n))
			if th.SingleRead(tr.verVar(h, n)) != v1 || nxt.IsNull() {
				goto restart
			}
			h = dec(nxt)
			continue
		}
		if n.level == childLevel+1 {
			return h, false
		}
		cnt := int(th.SingleRead(tr.cntVar(h, n)).Uint())
		if cnt > Fanout {
			goto restart
		}
		idx := cnt
		for i := 0; i < cnt; i++ {
			kv := th.SingleRead(tr.keyVar(h, n, i))
			if kv.IsNull() {
				goto restart
			}
			if sep < decKey(kv) {
				idx = i
				break
			}
		}
		kid := th.SingleRead(tr.valVar(h, n, idx))
		if th.SingleRead(tr.verVar(h, n)) != v1 || kid.IsNull() {
			goto restart
		}
		h = dec(kid)
	}
}

type sepOutcome int

const (
	sepDone sepOutcome = iota
	sepParentFull
	sepRetry
)

// insertSeparator adds (sep, right) at sep's sorted position inside
// parent, in one ordinary transaction.
func (x *Thread) insertSeparator(parent, right arena.Handle, sep uint64) sepOutcome {
	tr := x.t
	th := x.th
	p := tr.a.Get(parent)
	th.TxStart()
	v := th.TxRead(tr.verVar(parent, p))
	if !covers(th.TxRead(tr.highVar(parent, p)), sep) {
		// The host split away from under us; re-find it.
		th.TxAbort()
		return sepRetry
	}
	cnt := int(th.TxRead(tr.cntVar(parent, p)).Uint())
	if !th.TxOK() || cnt > Fanout {
		th.TxCommit()
		return sepRetry
	}
	if cnt == Fanout {
		th.TxAbort()
		return sepParentFull
	}
	// Sorted position; the separator may already be present from a
	// racing re-post.
	pos := cnt
	for i := 0; i < cnt; i++ {
		kv := th.TxRead(tr.keyVar(parent, p, i))
		if !th.TxOK() {
			th.TxCommit()
			return sepRetry
		}
		if kv.IsNull() {
			th.TxAbort()
			return sepRetry
		}
		k := decKey(kv)
		if k == sep {
			th.TxAbort()
			return sepDone
		}
		if sep < k {
			pos = i
			break
		}
	}
	// Shift keys[pos..cnt-1] and kids[pos+1..cnt] right by one.
	for i := cnt; i > pos; i-- {
		th.TxWrite(tr.keyVar(parent, p, i), th.TxRead(tr.keyVar(parent, p, i-1)))
		th.TxWrite(tr.valVar(parent, p, i+1), th.TxRead(tr.valVar(parent, p, i)))
	}
	if !th.TxOK() {
		th.TxCommit()
		return sepRetry
	}
	th.TxWrite(tr.keyVar(parent, p, pos), encKey(sep))
	th.TxWrite(tr.valVar(parent, p, pos+1), enc(right))
	th.TxWrite(tr.cntVar(parent, p), word.FromUint(uint64(cnt)+1))
	th.TxWrite(tr.verVar(parent, p), word.FromUint(v.Uint()+1))
	if th.TxCommit() {
		return sepDone
	}
	return sepRetry
}

// splitInterior splits a full interior node, then posts its separator
// upward.
func (x *Thread) splitInterior(h arena.Handle) {
	tr := x.t
	th := x.th
	n := tr.a.Get(h)
	var sep uint64
	var rightH arena.Handle

	for attempt := 1; ; attempt++ {
		th.TxStart()
		v := th.TxRead(tr.verVar(h, n))
		cnt := int(th.TxRead(tr.cntVar(h, n)).Uint())
		if !th.TxOK() || cnt > Fanout {
			th.TxCommit()
			th.Backoff(attempt)
			continue
		}
		if cnt < Fanout {
			th.TxAbort() // already split by someone else
			if !rightH.IsNil() {
				tr.a.Free(rightH) // never published
			}
			return
		}
		var keys [Fanout]word.Value
		var kids [Fanout + 1]word.Value
		for i := 0; i < cnt; i++ {
			keys[i] = th.TxRead(tr.keyVar(h, n, i))
		}
		for i := 0; i <= cnt; i++ {
			kids[i] = th.TxRead(tr.valVar(h, n, i))
		}
		if !th.TxOK() {
			th.TxCommit()
			th.Backoff(attempt)
			continue
		}
		mid := cnt / 2
		sep = decKey(keys[mid]) // moves up; right gets keys[mid+1..]

		if rightH.IsNil() {
			var rn *node
			rightH, rn = tr.a.Alloc()
			tr.initNode(rn, false)
		}
		rn := tr.a.Get(rightH)
		tr.initNode(rn, false)
		rn.level = n.level
		rcnt := cnt - mid - 1
		for i := 0; i < rcnt; i++ {
			rn.keys[i].Init(keys[mid+1+i])
		}
		for i := 0; i <= rcnt; i++ {
			rn.vals[i].Init(kids[mid+1+i])
		}
		rn.cnt.Init(word.FromUint(uint64(rcnt)))
		rn.high.Init(th.TxRead(tr.highVar(h, n)))
		rn.next.Init(th.TxRead(tr.nextVar(h, n)))
		if !th.TxOK() {
			th.TxCommit()
			th.Backoff(attempt)
			continue
		}

		for i := mid; i < cnt; i++ {
			th.TxWrite(tr.keyVar(h, n, i), word.Null)
		}
		for i := mid + 1; i <= cnt; i++ {
			th.TxWrite(tr.valVar(h, n, i), word.Null)
		}
		th.TxWrite(tr.cntVar(h, n), word.FromUint(uint64(mid)))
		th.TxWrite(tr.highVar(h, n), encKey(sep))
		th.TxWrite(tr.nextVar(h, n), enc(rightH))
		th.TxWrite(tr.verVar(h, n), word.FromUint(v.Uint()+1))
		if th.TxCommit() {
			break
		}
		th.Backoff(attempt)
	}
	x.postSeparator(h, rightH, sep, n.level)
}

// growRoot replaces the root with a new interior node over (left, right).
func (x *Thread) growRoot(left, right arena.Handle, sep uint64) bool {
	tr := x.t
	th := x.th
	th.TxStart()
	cur := th.TxRead(tr.rootVar())
	if !th.TxOK() {
		th.TxCommit()
		return false
	}
	if dec(cur) != left {
		// Someone else grew the tree; the separator will be posted into
		// the new root by the normal path.
		th.TxAbort()
		return false
	}
	h, rn := tr.a.Alloc()
	tr.initNode(rn, false)
	rn.level = tr.a.Get(left).level + 1
	rn.cnt.Init(word.FromUint(1))
	rn.keys[0].Init(encKey(sep))
	rn.vals[0].Init(enc(left))
	rn.vals[1].Init(enc(right))
	th.TxWrite(tr.rootVar(), enc(h))
	if th.TxCommit() {
		return true
	}
	tr.a.Free(h) // never published
	return false
}
