package btree

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"spectm/internal/core"
	"spectm/internal/rng"
)

func engines() map[string]core.Config {
	return map[string]core.Config{
		"orec-g": {Layout: core.LayoutOrec, Clock: core.ClockGlobal},
		"orec-l": {Layout: core.LayoutOrec, Clock: core.ClockLocal},
		"tvar-g": {Layout: core.LayoutTVar, Clock: core.ClockGlobal},
		"val":    {Layout: core.LayoutVal}, // counters: tree versions are monotone but values repeat
	}
}

func forAll(t *testing.T, fn func(t *testing.T, tr *Tree)) {
	t.Helper()
	for name, cfg := range engines() {
		t.Run(name, func(t *testing.T) { fn(t, New(core.New(cfg))) })
	}
}

func TestBasic(t *testing.T) {
	forAll(t, func(t *testing.T, tr *Tree) {
		th := tr.NewThread()
		if _, ok := th.Get(5); ok {
			t.Fatal("empty tree returned a value")
		}
		if !th.Put(5, 50) {
			t.Fatal("first Put must report new")
		}
		if v, ok := th.Get(5); !ok || v != 50 {
			t.Fatalf("Get = %d,%v want 50", v, ok)
		}
		if th.Put(5, 55) {
			t.Fatal("update must not report new")
		}
		if v, _ := th.Get(5); v != 55 {
			t.Fatalf("update lost: %d", v)
		}
		if !th.Delete(5) || th.Delete(5) {
			t.Fatal("Delete semantics")
		}
		if _, ok := th.Get(5); ok {
			t.Fatal("deleted key present")
		}
	})
}

func TestSplitsAndGrowth(t *testing.T) {
	forAll(t, func(t *testing.T, tr *Tree) {
		th := tr.NewThread()
		const n = 5000 // forces multiple levels at fanout 8
		for i := uint64(0); i < n; i++ {
			key := i * 2654435761 % (1 << 20)
			th.Put(key, key+1)
		}
		for i := uint64(0); i < n; i++ {
			key := i * 2654435761 % (1 << 20)
			if v, ok := th.Get(key); !ok || v != key+1 {
				t.Fatalf("key %d: got %d,%v", key, v, ok)
			}
		}
		// The root must have grown past a single leaf.
		root := tr.a.Get(dec(th.th.SingleRead(tr.rootVar())))
		if root.leaf {
			t.Fatal("root is still a leaf after 5000 inserts")
		}
	})
}

func TestKeyZeroAndBoundaries(t *testing.T) {
	forAll(t, func(t *testing.T, tr *Tree) {
		th := tr.NewThread()
		if !th.Put(0, 0) {
			t.Fatal("Put(0) failed")
		}
		if v, ok := th.Get(0); !ok || v != 0 {
			t.Fatal("Get(0) failed")
		}
		// Dense sequential keys force splits at every boundary.
		for i := uint64(1); i <= 200; i++ {
			th.Put(i, i*10)
		}
		for i := uint64(0); i <= 200; i++ {
			want := i * 10
			if v, ok := th.Get(i); !ok || v != want {
				t.Fatalf("key %d: %d,%v want %d", i, v, ok, want)
			}
		}
		if !th.Delete(0) {
			t.Fatal("Delete(0) failed")
		}
	})
}

func TestModelEquivalence(t *testing.T) {
	forAll(t, func(t *testing.T, tr *Tree) {
		th := tr.NewThread()
		model := map[uint64]uint64{}
		f := func(ops []uint32) bool {
			for _, op := range ops {
				key := uint64(op % 512)
				val := uint64(op >> 9 % 1024)
				switch (op / 16384) % 3 {
				case 0:
					_, had := model[key]
					if th.Put(key, val) != !had {
						return false
					}
					model[key] = val
				case 1:
					_, had := model[key]
					if th.Delete(key) != had {
						return false
					}
					delete(model, key)
				default:
					v, ok := th.Get(key)
					mv, had := model[key]
					if ok != had || (ok && v != mv) {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Fatal(err)
		}
		for k, mv := range model {
			if v, ok := th.Get(k); !ok || v != mv {
				t.Fatalf("final check key %d: %d,%v want %d", k, v, ok, mv)
			}
		}
	})
}

func TestConcurrentDisjointWriters(t *testing.T) {
	forAll(t, func(t *testing.T, tr *Tree) {
		const workers = 4
		const per = 3000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w uint64) {
				defer wg.Done()
				th := tr.NewThread()
				for i := uint64(0); i < per; i++ {
					key := i*workers + w // disjoint key sets
					if !th.Put(key, key^0xABCD) {
						t.Errorf("worker %d: Put(%d) reported existing", w, key)
						return
					}
				}
			}(uint64(w))
		}
		wg.Wait()
		th := tr.NewThread()
		for key := uint64(0); key < workers*per; key++ {
			if v, ok := th.Get(key); !ok || v != key^0xABCD {
				t.Fatalf("key %d: %d,%v", key, v, ok)
			}
		}
	})
}

func TestConcurrentMixedWorkload(t *testing.T) {
	forAll(t, func(t *testing.T, tr *Tree) {
		const workers = 4
		const keys = 512
		iters := 4000
		if testing.Short() {
			iters = 400
		}
		var puts, dels [keys]atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				th := tr.NewThread()
				r := rng.New(seed + 1)
				for i := 0; i < iters; i++ {
					key := r.Intn(keys)
					switch r.Intn(4) {
					case 0, 1:
						if th.Put(key, key*7) {
							puts[key].Add(1)
						}
					case 2:
						if th.Delete(key) {
							dels[key].Add(1)
						}
					default:
						if v, ok := th.Get(key); ok && v != key*7 {
							t.Errorf("key %d holds foreign value %d", key, v)
							return
						}
					}
				}
			}(uint64(w))
		}
		wg.Wait()
		th := tr.NewThread()
		for k := uint64(0); k < keys; k++ {
			balance := puts[k].Load() - dels[k].Load()
			if balance != 0 && balance != 1 {
				t.Fatalf("key %d: impossible new-insert/delete balance %d", k, balance)
			}
			_, present := th.Get(k)
			if present != (balance == 1) {
				t.Fatalf("key %d: present=%v balance=%d", k, present, balance)
			}
		}
	})
}

// TestOrderedInvariant walks every leaf via sibling links and checks
// global key order against fences after a randomized workout.
func TestOrderedInvariant(t *testing.T) {
	forAll(t, func(t *testing.T, tr *Tree) {
		th := tr.NewThread()
		r := rng.New(99)
		for i := 0; i < 3000; i++ {
			key := r.Intn(1 << 16)
			if r.Intn(3) == 0 {
				th.Delete(key)
			} else {
				th.Put(key, key)
			}
		}
		// Find the leftmost leaf.
		h := dec(th.th.SingleRead(tr.rootVar()))
		for {
			n := tr.a.Get(h)
			if n.leaf {
				break
			}
			h = dec(th.th.SingleRead(tr.valVar(h, n, 0)))
		}
		// Sweep the leaf chain.
		seen := map[uint64]bool{}
		var lowBound uint64
		for {
			n := tr.a.Get(h)
			high := th.th.SingleRead(tr.highVar(h, n))
			for i := 0; i < LeafSlots; i++ {
				kv := th.th.SingleRead(tr.keyVar(h, n, i))
				if kv.IsNull() {
					continue
				}
				k := decKey(kv)
				if seen[k] {
					t.Fatalf("key %d appears in two leaves", k)
				}
				seen[k] = true
				if k < lowBound {
					t.Fatalf("key %d below leaf lower bound %d", k, lowBound)
				}
				if !high.IsNull() && k+1 >= high.Uint() {
					t.Fatalf("key %d at or above leaf fence %d", k, high.Uint()-1)
				}
			}
			if high.IsNull() {
				break
			}
			lowBound = high.Uint() - 1
			nxt := th.th.SingleRead(tr.nextVar(h, n))
			if nxt.IsNull() {
				t.Fatal("fenced leaf without sibling")
			}
			h = dec(nxt)
		}
		// Every present key must be in the sweep.
		for k := uint64(0); k < 1<<16; k++ {
			if _, ok := th.Get(k); ok && !seen[k] {
				t.Fatalf("key %d gettable but missing from leaf sweep", k)
			}
		}
	})
}
