// Package client is the typed Go client for spectm-server's wire
// protocol: the data commands (GET/SET/DEL/CAS/MGET and the ordered
// SCAN/ISCAN/IDXCREATE), the replication
// introspection commands (ROLE, REPLPOS, WAITOFF, REPLSTATUS), and the
// topology admin commands (PROMOTE, REPLICAOF). The failover
// coordinator (failover.go), the nemesis harness and the e2e tests all
// drive servers through this package instead of hand-rolled socket
// code.
//
// A Client is one connection executing one command at a time
// (synchronized internally); it is safe for concurrent use but does not
// pipeline. Every call applies the client's I/O deadline, so a
// partitioned or black-holed server yields a timeout error instead of a
// hang — which is exactly what the nemesis tests need.
package client

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"spectm/internal/proto"
)

// ServerError is an error reply (-...) from the server, e.g.
// "READONLY replica; send writes to the primary".
type ServerError string

func (e ServerError) Error() string { return string(e) }

// IsReadOnly reports whether err is the replica write refusal.
func IsReadOnly(err error) bool {
	var se ServerError
	return errors.As(err, &se) && strings.HasPrefix(string(se), "READONLY")
}

// IsStale reports whether err is the fenced-primary write refusal: the
// server was a primary, but a newer epoch exists.
func IsStale(err error) bool {
	var se ServerError
	return errors.As(err, &se) && strings.HasPrefix(string(se), "STALE")
}

// Client is one synchronous connection to a spectm-server.
type Client struct {
	mu      sync.Mutex
	nc      net.Conn
	rd      *proto.Reader
	wr      *proto.Writer
	timeout time.Duration
}

// DefaultTimeout bounds every command round trip unless WithTimeout
// overrides it.
const DefaultTimeout = 5 * time.Second

// Option configures a Client.
type Option func(*Client)

// WithTimeout sets the per-command I/O deadline (0 disables it).
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// Dial connects to a spectm-server's data listener at addr.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{timeout: DefaultTimeout}
	for _, o := range opts {
		o(c)
	}
	d := c.timeout
	if d == 0 {
		d = DefaultTimeout
	}
	nc, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c.nc = nc
	c.rd = proto.NewReader(nc)
	c.wr = proto.NewWriter(nc)
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// Addr returns the remote address.
func (c *Client) Addr() string { return c.nc.RemoteAddr().String() }

// roundTrip sends one command and decodes one reply. The reply's Str
// fields alias the read buffer; callers copy what they keep.
func (c *Client) roundTrip(rep *proto.Reply, args ...string) error {
	if c.timeout > 0 {
		c.nc.SetDeadline(time.Now().Add(c.timeout))
	}
	c.wr.Array(len(args))
	for _, a := range args {
		c.wr.Arg(a)
	}
	if err := c.wr.Flush(); err != nil {
		return err
	}
	if err := c.rd.ReadReply(rep); err != nil {
		return err
	}
	if rep.Kind == proto.KindError {
		return ServerError(rep.Str)
	}
	return nil
}

// Ping round-trips a PING.
func (c *Client) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	return c.roundTrip(&rep, "PING")
}

// Get fetches key; ok is false when the key is absent.
func (c *Client) Get(key string) (val uint64, ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	if err := c.roundTrip(&rep, "GET", key); err != nil {
		return 0, false, err
	}
	if rep.Null {
		return 0, false, nil
	}
	if rep.Kind != proto.KindInt {
		return 0, false, fmt.Errorf("client: GET reply kind %q", rep.Kind)
	}
	return uint64(rep.Int), true, nil
}

// Set writes key = val.
func (c *Client) Set(key string, val uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	return c.roundTrip(&rep, "SET", key, strconv.FormatUint(val, 10))
}

// Del removes key; ok reports whether it existed.
func (c *Client) Del(key string) (ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	if err := c.roundTrip(&rep, "DEL", key); err != nil {
		return false, err
	}
	return rep.Int == 1, nil
}

// CAS swaps key from old to new; ok reports whether it hit.
func (c *Client) CAS(key string, old, new uint64) (ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	if err := c.roundTrip(&rep, "CAS", key,
		strconv.FormatUint(old, 10), strconv.FormatUint(new, 10)); err != nil {
		return false, err
	}
	return rep.Int == 1, nil
}

// MGetResult is one key's slot in an MGet reply.
type MGetResult struct {
	Val uint64
	OK  bool
}

// MGet fetches keys as one atomic snapshot.
func (c *Client) MGet(keys ...string) ([]MGetResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	args := append(make([]string, 0, len(keys)+1), "MGET")
	args = append(args, keys...)
	if err := c.roundTrip(&rep, args...); err != nil {
		return nil, err
	}
	if rep.Kind != proto.KindArray {
		return nil, fmt.Errorf("client: MGET reply kind %q", rep.Kind)
	}
	out := make([]MGetResult, rep.Int)
	for i := range out {
		var el proto.Reply
		if err := c.rd.ReadReply(&el); err != nil {
			return nil, err
		}
		if !el.Null && el.Kind == proto.KindInt {
			out[i] = MGetResult{Val: uint64(el.Int), OK: true}
		}
	}
	return out, nil
}

// ScanEntry is one (key, value) pair in a Scan or IScan reply, in key
// order (IScan: index-key order, then primary-key order).
type ScanEntry struct {
	Key string
	Val uint64
}

// readScanReply decodes the flat 2n-element key/value reply array.
func (c *Client) readScanReply(rep *proto.Reply) ([]ScanEntry, error) {
	if rep.Kind != proto.KindArray || rep.Int%2 != 0 {
		return nil, fmt.Errorf("client: scan reply kind %q len %d", rep.Kind, rep.Int)
	}
	out := make([]ScanEntry, rep.Int/2)
	for i := range out {
		var k, v proto.Reply
		if err := c.rd.ReadReply(&k); err != nil {
			return nil, err
		}
		// Copy out: Str aliases the read buffer across ReadReply calls.
		key := string(k.Str)
		if err := c.rd.ReadReply(&v); err != nil {
			return nil, err
		}
		out[i] = ScanEntry{Key: key, Val: uint64(v.Int)}
	}
	return out, nil
}

// Scan returns every live key k with start ≤ k < end (empty end =
// unbounded) in order, up to limit entries (0 = all), with values.
func (c *Client) Scan(start, end string, limit int) ([]ScanEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	if err := c.roundTrip(&rep, "SCAN", start, end, strconv.Itoa(limit)); err != nil {
		return nil, err
	}
	return c.readScanReply(&rep)
}

// IScan ranges over the named secondary index: live primary keys whose
// index key ik satisfies start ≤ ik < end, ordered by (ik, primary
// key), up to limit entries (0 = all).
func (c *Client) IScan(index, start, end string, limit int) ([]ScanEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	if err := c.roundTrip(&rep, "ISCAN", index, start, end, strconv.Itoa(limit)); err != nil {
		return nil, err
	}
	return c.readScanReply(&rep)
}

// IdxCreate registers a secondary index (IDXCREATE). Kinds: "value",
// "key", "prefix:N". Re-creating an existing index with the same kind
// is a no-op.
func (c *Client) IdxCreate(name, kind string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	return c.roundTrip(&rep, "IDXCREATE", name, kind)
}

// ReplPos returns the read-your-writes position token (REPLPOS).
func (c *Client) ReplPos() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	if err := c.roundTrip(&rep, "REPLPOS"); err != nil {
		return 0, err
	}
	return uint64(rep.Int), nil
}

// WaitOff blocks until the replica has applied primary position pos
// (WAITOFF). A -WAITTIMEOUT reply comes back as a ServerError.
func (c *Client) WaitOff(pos uint64, timeout time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The server may park up to the requested timeout; give the socket
	// deadline slack on top of it.
	saved := c.timeout
	if saved > 0 && timeout >= saved {
		c.timeout = timeout + time.Second
	}
	var rep proto.Reply
	err := c.roundTrip(&rep, "WAITOFF",
		strconv.FormatUint(pos, 10),
		strconv.FormatInt(timeout.Milliseconds(), 10))
	c.timeout = saved
	return err
}

// ReplStatus returns the raw "name value" lines of REPLSTATUS.
func (c *Client) ReplStatus() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	if err := c.roundTrip(&rep, "REPLSTATUS"); err != nil {
		return "", err
	}
	return string(rep.Str), nil
}

// Stats returns the raw "name value" lines of STATS.
func (c *Client) Stats() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	if err := c.roundTrip(&rep, "STATS"); err != nil {
		return "", err
	}
	return string(rep.Str), nil
}

// RoleInfo is the decoded epoch-carrying ROLE reply.
type RoleInfo struct {
	Role  string // "primary", "replica" or "standalone"
	Epoch uint64

	// Primary fields.
	Position uint64 // streamed WAL position (records)
	Replicas int    // connected replica links

	// Replica fields.
	Primary string // primary's replication address
	Link    string // replication link state
	Applied uint64 // applied position (records)
}

// Role fetches the server's role, epoch and positions (ROLE).
func (c *Client) Role() (RoleInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	if err := c.roundTrip(&rep, "ROLE"); err != nil {
		return RoleInfo{}, err
	}
	if rep.Kind != proto.KindArray || rep.Int < 2 {
		return RoleInfo{}, fmt.Errorf("client: ROLE reply kind %q len %d", rep.Kind, rep.Int)
	}
	els := make([]proto.Reply, rep.Int)
	var info RoleInfo
	for i := range els {
		if err := c.rd.ReadReply(&els[i]); err != nil {
			return RoleInfo{}, err
		}
		// Copy out: Str aliases the read buffer across ReadReply calls.
		els[i].Str = append([]byte(nil), els[i].Str...)
	}
	info.Role = string(els[0].Str)
	info.Epoch = uint64(els[1].Int)
	switch info.Role {
	case "primary":
		if len(els) >= 4 {
			info.Position = uint64(els[2].Int)
			info.Replicas = int(els[3].Int)
		}
	case "replica":
		if len(els) >= 5 {
			info.Primary = string(els[2].Str)
			info.Link = string(els[3].Str)
			info.Applied = uint64(els[4].Int)
		}
	}
	return info, nil
}

// Promote makes the server the primary (PROMOTE) and returns the new
// cluster epoch.
func (c *Client) Promote() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	if err := c.roundTrip(&rep, "PROMOTE"); err != nil {
		return 0, err
	}
	return uint64(rep.Int), nil
}

// ReplicaOf points the server at the primary whose replication listener
// is addr ("host:port").
func (c *Client) ReplicaOf(addr string) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("client: REPLICAOF address: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	return c.roundTrip(&rep, "REPLICAOF", host, port)
}

// Detach sends REPLICAOF NO ONE: stop tailing, accept writes again.
func (c *Client) Detach() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep proto.Reply
	return c.roundTrip(&rep, "REPLICAOF", "NO", "ONE")
}
