// Unit tests against a scripted wire server: reply decoding, the error
// predicates, and the coordinator's no-candidate path. The typed client
// against real servers is exercised throughout internal/server's
// failover/nemesis tests and the tests/ e2e tree.
package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"spectm/internal/proto"
)

// scriptServer answers every incoming command on one connection with
// the next canned write function.
func scriptServer(t *testing.T, replies ...func(w *proto.Writer)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		rd, w := proto.NewReader(nc), proto.NewWriter(nc)
		for _, rep := range replies {
			if _, err := rd.Next(); err != nil {
				return
			}
			rep(w)
			w.Flush()
		}
	}()
	return ln.Addr().String()
}

func TestErrorPredicates(t *testing.T) {
	if !IsReadOnly(ServerError("READONLY replica; send writes to the primary")) {
		t.Error("IsReadOnly missed a READONLY error")
	}
	if !IsStale(ServerError("STALE primary fenced by a newer epoch; REPLICAOF the new primary or PROMOTE")) {
		t.Error("IsStale missed a STALE error")
	}
	if IsReadOnly(ServerError("ERR nope")) || IsStale(ServerError("ERR nope")) {
		t.Error("predicates matched a generic error")
	}
	if IsReadOnly(errors.New("READONLY but not a ServerError")) {
		t.Error("IsReadOnly matched a non-wire error")
	}
	if IsReadOnly(nil) || IsStale(nil) {
		t.Error("predicates matched nil")
	}
}

func TestRoleDecoding(t *testing.T) {
	addr := scriptServer(t,
		func(w *proto.Writer) { // primary shape
			w.Array(4)
			w.SimpleString("primary")
			w.Uint(3)
			w.Uint(1234)
			w.Uint(2)
		},
		func(w *proto.Writer) { // replica shape
			w.Array(5)
			w.SimpleString("replica")
			w.Uint(3)
			w.BulkString("127.0.0.1:6400")
			w.SimpleString("streaming")
			w.Uint(999)
		},
		func(w *proto.Writer) { // standalone / mid-transition shape
			w.Array(2)
			w.SimpleString("standalone")
			w.Uint(0)
		},
	)
	c, err := Dial(addr, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got, err := c.Role()
	if err != nil {
		t.Fatal(err)
	}
	want := RoleInfo{Role: "primary", Epoch: 3, Position: 1234, Replicas: 2}
	if got != want {
		t.Errorf("primary ROLE = %+v, want %+v", got, want)
	}

	got, err = c.Role()
	if err != nil {
		t.Fatal(err)
	}
	want = RoleInfo{Role: "replica", Epoch: 3, Primary: "127.0.0.1:6400", Link: "streaming", Applied: 999}
	if got != want {
		t.Errorf("replica ROLE = %+v, want %+v", got, want)
	}

	got, err = c.Role()
	if err != nil {
		t.Fatal(err)
	}
	want = RoleInfo{Role: "standalone"}
	if got != want {
		t.Errorf("standalone ROLE = %+v, want %+v", got, want)
	}
}

func TestServerErrorRoundTrip(t *testing.T) {
	addr := scriptServer(t, func(w *proto.Writer) {
		w.Error("READONLY replica; send writes to the primary")
	})
	c, err := Dial(addr, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", 1); !IsReadOnly(err) {
		t.Errorf("Set returned %v, want a READONLY ServerError", err)
	}
}

// TestFailoverNoCandidate: a slate of dead nodes ends in ErrNoCandidate
// after the catch-up window, not a hang or a bogus promotion.
func TestFailoverNoCandidate(t *testing.T) {
	dead := func() string { // an address that refuses connections
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	nodes := []Node{{Addr: dead(), ReplAddr: dead()}, {Addr: dead(), ReplAddr: dead()}}
	_, err := Failover(nodes, FailoverConfig{
		CatchUp: 200 * time.Millisecond, Poll: 25 * time.Millisecond, DialTimeout: 100 * time.Millisecond,
	})
	if !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("Failover over dead nodes = %v, want ErrNoCandidate", err)
	}
}
