// The failover coordinator: the client side of the promotion protocol.
// Given the surviving nodes of a cluster whose primary died, it polls
// their epoch-qualified applied positions over a bounded catch-up
// window, promotes the most-caught-up replica (repl.PickCandidate:
// highest epoch, then highest applied cursor position), and re-points
// the rest at the new primary. The server side (epoch bump, durable
// fence record, stream fencing) lives in internal/server and
// internal/repl.
package client

import (
	"errors"
	"fmt"
	"time"

	"spectm/internal/repl"
)

// Node names one cluster member for the coordinator.
type Node struct {
	Addr     string // data-plane address (client commands)
	ReplAddr string // replication listener address (what replicas dial)
}

// FailoverConfig bounds the coordinator.
type FailoverConfig struct {
	// CatchUp is the bounded window the coordinator waits for replica
	// applied positions to quiesce before flipping the winner to
	// read-write. Within the window, two consecutive identical polls end
	// the wait early. Default 2s.
	CatchUp time.Duration
	// Poll is the interval between position polls. Default 50ms.
	Poll time.Duration
	// DialTimeout bounds each per-node round trip, so a partitioned
	// node costs one timeout, not a hang. Default 1s.
	DialTimeout time.Duration
}

func (c *FailoverConfig) defaults() {
	if c.CatchUp <= 0 {
		c.CatchUp = 2 * time.Second
	}
	if c.Poll <= 0 {
		c.Poll = 50 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
}

// FailoverResult reports what a Failover did.
type FailoverResult struct {
	Promoted  int    // index into nodes of the new primary
	Epoch     uint64 // the new cluster epoch
	Repointed []int  // indexes re-pointed at the new primary
	Skipped   []int  // indexes that were unreachable throughout
}

// ErrNoCandidate means no node answered the position polls.
var ErrNoCandidate = errors.New("client: no reachable promotion candidate")

// pollRole fetches one node's RoleInfo with a bounded round trip.
func pollRole(addr string, d time.Duration) (RoleInfo, error) {
	c, err := Dial(addr, WithTimeout(d))
	if err != nil {
		return RoleInfo{}, err
	}
	defer c.Close()
	return c.Role()
}

// Failover runs one promotion round over nodes (the surviving members;
// do not include the dead primary). It returns which node was promoted
// to which epoch and which nodes now tail it. Nodes that never answer
// are skipped — re-point them manually when they return, or run the
// coordinator again.
func Failover(nodes []Node, cfg FailoverConfig) (FailoverResult, error) {
	cfg.defaults()
	if len(nodes) == 0 {
		return FailoverResult{}, ErrNoCandidate
	}

	// Catch-up window: poll every node's epoch-qualified applied
	// position until two consecutive sweeps agree (the survivors have
	// drained whatever the dead primary managed to ship) or the window
	// closes. An unreachable node just stays unmarked in `alive`.
	alive := make([]bool, len(nodes))
	cands := make([]repl.Candidate, len(nodes))
	deadline := time.Now().Add(cfg.CatchUp)
	var prev []repl.Candidate
	for {
		anyAlive := false
		for i, n := range nodes {
			info, err := pollRole(n.Addr, cfg.DialTimeout)
			if err != nil {
				alive[i] = false
				continue
			}
			alive[i] = true
			anyAlive = true
			applied := info.Applied
			if info.Role == "primary" || info.Role == "standalone" {
				// A node that is already writable competes with its
				// streamed position: it holds everything it acknowledged.
				applied = info.Position
			}
			cands[i] = repl.Candidate{Applied: applied, Epoch: info.Epoch}
		}
		quiesced := anyAlive && prev != nil
		if quiesced {
			for i := range cands {
				if alive[i] && cands[i] != prev[i] {
					quiesced = false
					break
				}
			}
		}
		if quiesced || time.Now().After(deadline) {
			break
		}
		prev = append(prev[:0], cands...)
		time.Sleep(cfg.Poll)
	}

	// Election: highest epoch, then highest applied, among the alive.
	slate := make([]repl.Candidate, 0, len(nodes))
	idxs := make([]int, 0, len(nodes))
	for i := range nodes {
		if alive[i] {
			slate = append(slate, cands[i])
			idxs = append(idxs, i)
		}
	}
	win := repl.PickCandidate(slate)
	if win < 0 {
		return FailoverResult{}, ErrNoCandidate
	}
	winner := idxs[win]

	res := FailoverResult{Promoted: winner}
	c, err := Dial(nodes[winner].Addr, WithTimeout(cfg.DialTimeout))
	if err != nil {
		return res, fmt.Errorf("client: dialing winner %s: %w", nodes[winner].Addr, err)
	}
	info, err := c.Role()
	if err == nil && info.Role == "primary" {
		// Already primary (re-run of the coordinator): keep its epoch.
		res.Epoch = info.Epoch
	} else {
		if res.Epoch, err = c.Promote(); err != nil {
			c.Close()
			return res, fmt.Errorf("client: promoting %s: %w", nodes[winner].Addr, err)
		}
	}
	c.Close()

	// Re-point the rest. A failure here is not fatal to the promotion:
	// the node lands in Skipped and can be re-pointed later.
	for i, n := range nodes {
		if i == winner {
			continue
		}
		if !alive[i] {
			res.Skipped = append(res.Skipped, i)
			continue
		}
		rc, err := Dial(n.Addr, WithTimeout(cfg.DialTimeout))
		if err != nil {
			res.Skipped = append(res.Skipped, i)
			continue
		}
		err = rc.ReplicaOf(nodes[winner].ReplAddr)
		rc.Close()
		if err != nil {
			res.Skipped = append(res.Skipped, i)
			continue
		}
		res.Repointed = append(res.Repointed, i)
	}
	return res, nil
}
