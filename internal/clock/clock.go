// Package clock provides the two version-management strategies of the
// paper's §4.1:
//
//   - Global: a single shared 64-bit version number incremented by every
//     non-read-only commit (TL2 style; sampled at transaction start, used
//     with timebase extension).
//   - PerThread: one padded counter per thread, bumped on each commit by
//     its owner. Logically incrementing the "shared counter" is a cheap
//     local add; reading it means summing all slots (paper §2.4).
//
// We follow the paper's 64-bit assumption and ignore overflow (§4.1).
package clock

import (
	"runtime"

	"spectm/internal/pad"
)

// Global is the shared TL2-style clock.
type Global struct {
	c pad.U64
}

// Read samples the clock.
func (g *Global) Read() uint64 { return g.c.Load() }

// Tick increments the clock and returns the new value, the commit
// timestamp of the caller.
func (g *Global) Tick() uint64 { return g.c.Add(1) }

// PerThread is the distributed alternative: per-thread commit counters
// operated as a distributed sequence lock. A writer bumps its own slot to
// odd immediately before its store phase and back to even immediately
// after, so an odd slot means "stores in flight". Readers sample the
// logical clock with StableSum, which refuses to return while any writer
// is mid-phase. Two equal StableSums with a successful value validation
// in between certify a consistent snapshot (Dalessandro et al., as cited
// in §2.4 of the paper).
type PerThread struct {
	slots *pad.Slots
}

// NewPerThread returns counters for n threads.
func NewPerThread(n int) *PerThread { return &PerThread{slots: pad.NewSlots(n)} }

// Bump advances thread tid's slot by one, toggling its parity. Writers
// call it in pairs bracketing their store phase.
func (p *PerThread) Bump(tid int) { p.slots.At(tid).Add(1) }

// Sum reads the raw sum of all per-thread counters without the parity
// check. It is a monotone activity indicator, not a snapshot.
func (p *PerThread) Sum() uint64 { return p.slots.Sum() }

// StableSum reads the logical clock: the sum of all per-thread counters,
// sampled only when every slot is even (no writer inside a store phase).
// The composite is still not atomic; callers bracket validations with two
// StableSums and retry on inequality.
func (p *PerThread) StableSum() uint64 {
	for spins := 0; ; spins++ {
		var t uint64
		odd := false
		for i := 0; i < p.slots.Len(); i++ {
			v := p.slots.At(i).Load()
			if v&1 == 1 {
				odd = true
				break
			}
			t += v
		}
		if !odd {
			return t
		}
		if spins&0xf == 0xf {
			runtime.Gosched()
		}
	}
}

// Threads returns the slot count.
func (p *PerThread) Threads() int { return p.slots.Len() }
