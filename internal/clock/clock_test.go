package clock

import (
	"sync"
	"testing"
)

func TestGlobalTick(t *testing.T) {
	var g Global
	if g.Read() != 0 {
		t.Fatal("fresh clock must read 0")
	}
	if g.Tick() != 1 || g.Tick() != 2 {
		t.Fatal("Tick must return consecutive values")
	}
	if g.Read() != 2 {
		t.Fatal("Read must observe the last Tick")
	}
}

func TestGlobalTickConcurrent(t *testing.T) {
	var g Global
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	seen := make([]map[uint64]bool, workers)
	for w := 0; w < workers; w++ {
		seen[w] = make(map[uint64]bool, per)
		wg.Add(1)
		go func(m map[uint64]bool) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m[g.Tick()] = true
			}
		}(seen[w])
	}
	wg.Wait()
	all := make(map[uint64]bool, workers*per)
	for _, m := range seen {
		for v := range m {
			if all[v] {
				t.Fatalf("timestamp %d handed out twice", v)
			}
			all[v] = true
		}
	}
	if g.Read() != workers*per {
		t.Fatalf("final clock %d, want %d", g.Read(), workers*per)
	}
}

func TestPerThreadSum(t *testing.T) {
	p := NewPerThread(4)
	if p.Sum() != 0 {
		t.Fatal("fresh per-thread clock must sum to 0")
	}
	p.Bump(0)
	p.Bump(3)
	p.Bump(3)
	if got := p.Sum(); got != 3 {
		t.Fatalf("Sum = %d, want 3", got)
	}
	if p.Threads() != 4 {
		t.Fatal("Threads mismatch")
	}
}

func TestPerThreadConcurrent(t *testing.T) {
	const workers, per = 8, 10000
	p := NewPerThread(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.Bump(tid)
			}
		}(w)
	}
	wg.Wait()
	if got := p.Sum(); got != workers*per {
		t.Fatalf("Sum = %d, want %d", got, workers*per)
	}
}
