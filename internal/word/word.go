// Package word defines the 64-bit value encoding shared by every SpecTM
// meta-data layout.
//
// A transactional word stores one Value. The low two bits are reserved:
//
//	bit 0 — STM lock bit. Only the "val" layout (combined meta-data,
//	        paper §2.4) ever sets it; values always keep it clear, so a
//	        set bit 0 unambiguously means "locked, bits 1..63 = owner id".
//	bit 1 — application mark bit ("deleted" bit in the paper's skip list
//	        and in Harris-style lock-free lists).
//
// Bits 2..63 carry the payload: either a small integer or an arena handle
// (the repository's substitute for the paper's aligned C pointers).
package word

// Value is the encoded content of a transactional word.
type Value uint64

const (
	// LockBit is reserved for the STM in the combined-meta-data layout.
	LockBit Value = 1 << 0
	// MarkBit is the application-level "deleted" mark.
	MarkBit Value = 1 << 1

	payloadShift = 2
	// MaxPayload is the largest integer payload a Value can carry.
	MaxPayload uint64 = 1<<62 - 1
)

// Null is the zero Value. It encodes payload 0, unmarked and unlocked, and
// plays the role of the paper's NULL pointer.
const Null Value = 0

// FromUint encodes an integer payload. The payload must fit in 62 bits;
// larger values are truncated (callers that need the full range should
// range-check against MaxPayload).
func FromUint(u uint64) Value { return Value(u) << payloadShift }

// Uint decodes the integer payload, ignoring the mark bit.
func (v Value) Uint() uint64 { return uint64(v) >> payloadShift }

// Marked reports whether the application mark bit is set.
func (v Value) Marked() bool { return v&MarkBit != 0 }

// WithMark returns v with the mark bit set.
func (v Value) WithMark() Value { return v | MarkBit }

// WithoutMark returns v with the mark bit cleared.
func (v Value) WithoutMark() Value { return v &^ MarkBit }

// IsNull reports whether the payload is zero, ignoring the mark bit.
// A marked null still counts as null.
func (v Value) IsNull() bool { return v.WithoutMark() == Null }

// Raw views of the lock bit, used only by the val layout inside the engine.

// Locked reports whether the raw word w is currently locked (bit 0 set).
func Locked(w uint64) bool { return w&uint64(LockBit) != 0 }

// LockWord builds the raw locked representation for owner id o.
func LockWord(owner uint64) uint64 { return owner<<1 | uint64(LockBit) }

// LockOwner extracts the owner id from a locked raw word.
func LockOwner(w uint64) uint64 { return w >> 1 }
