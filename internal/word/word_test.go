package word

import (
	"testing"
	"testing/quick"
)

func TestNull(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must be null")
	}
	if Null.Marked() {
		t.Fatal("Null must be unmarked")
	}
	if !Null.WithMark().IsNull() {
		t.Fatal("marked null is still null")
	}
	if FromUint(0) != Null {
		t.Fatal("FromUint(0) must equal Null")
	}
}

func TestRoundTrip(t *testing.T) {
	for _, u := range []uint64{0, 1, 2, 3, 1 << 20, MaxPayload} {
		v := FromUint(u)
		if got := v.Uint(); got != u {
			t.Fatalf("round trip %d -> %d", u, got)
		}
		if Locked(uint64(v)) {
			t.Fatalf("encoded value %d must not look locked", u)
		}
		if v.Marked() {
			t.Fatalf("encoded value %d must not look marked", u)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(u uint64) bool {
		u &= MaxPayload
		v := FromUint(u)
		return v.Uint() == u && !Locked(uint64(v)) && !v.Marked()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMark(t *testing.T) {
	v := FromUint(42)
	m := v.WithMark()
	if !m.Marked() {
		t.Fatal("WithMark must set mark")
	}
	if m.Uint() != 42 {
		t.Fatal("mark must not disturb payload")
	}
	if m.WithoutMark() != v {
		t.Fatal("WithoutMark must restore the original")
	}
	if v.Marked() {
		t.Fatal("WithMark must not mutate its receiver")
	}
}

func TestMarkProperty(t *testing.T) {
	f := func(u uint64) bool {
		v := FromUint(u & MaxPayload)
		m := v.WithMark()
		return m.Marked() && m.WithoutMark() == v && m.Uint() == v.Uint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockWord(t *testing.T) {
	for _, owner := range []uint64{1, 2, 77, 1 << 40} {
		w := LockWord(owner)
		if !Locked(w) {
			t.Fatalf("LockWord(%d) must be locked", owner)
		}
		if got := LockOwner(w); got != owner {
			t.Fatalf("owner %d -> %d", owner, got)
		}
	}
}

func TestLockWordProperty(t *testing.T) {
	f := func(owner uint64) bool {
		owner &= 1<<63 - 1
		w := LockWord(owner)
		return Locked(w) && LockOwner(w) == owner
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValuesNeverLookLocked(t *testing.T) {
	// Any encoded value, marked or not, must have bit 0 clear: the val
	// layout depends on this to distinguish values from lock words.
	f := func(u uint64, mark bool) bool {
		v := FromUint(u & MaxPayload)
		if mark {
			v = v.WithMark()
		}
		return !Locked(uint64(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
