module spectm

go 1.23.0
