module spectm

go 1.24.0
