// End-to-end over the public spectm surface only: every layout × CC
// policy combination the options constructor accepts runs a concurrent
// bank-transfer workload and must conserve the total. This is the
// engine leg of the tests/ tree — the deep per-protocol batteries live
// in internal/core; this pins the public API composition.
package engine_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"spectm"
)

func configs() map[string][]spectm.Option {
	return map[string][]spectm.Option{
		"default":        nil,
		"orec-lazy":      {spectm.WithLayout(spectm.LayoutOrec), spectm.WithCC(spectm.CCLazy)},
		"orec-eager":     {spectm.WithLayout(spectm.LayoutOrec), spectm.WithCC(spectm.CCEager)},
		"orec-local":     {spectm.WithLayout(spectm.LayoutOrec), spectm.WithCC(spectm.CCLocal)},
		"orec-snap":      {spectm.WithLayout(spectm.LayoutOrec), spectm.WithSnapshots()},
		"tvar":           {spectm.WithLayout(spectm.LayoutTVar)},
		"tvar-snap":      {spectm.WithLayout(spectm.LayoutTVar), spectm.WithSnapshots()},
		"val":            {spectm.WithLayout(spectm.LayoutVal)},
		"val-nocounter":  {spectm.WithLayout(spectm.LayoutVal), spectm.WithCC(spectm.CCNoCounter)},
		"tiny-orec-tabl": {spectm.WithOrecBits(4)}, // forced false conflicts
	}
}

func TestPublicAPITransfersConserve(t *testing.T) {
	const (
		accounts = 64
		seedBal  = 100
		rounds   = 2000
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	for name, opts := range configs() {
		t.Run(name, func(t *testing.T) {
			e, err := spectm.NewEngine(opts...)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			vars := make([]spectm.Var, accounts)
			for i := range vars {
				vars[i] = e.NewVar(spectm.FromUint(seedBal))
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					thr := e.Register()
					for i := 0; i < rounds; i++ {
						from := (w*31 + i*7) % accounts
						to := (from + 1 + i%13) % accounts
						if from == to {
							continue
						}
						spectm.DoRW2(thr, vars[from], vars[to],
							func(a, b spectm.Value) (spectm.Value, spectm.Value, bool) {
								if a.Uint() == 0 {
									return a, b, false
								}
								return spectm.FromUint(a.Uint() - 1), spectm.FromUint(b.Uint() + 1), true
							})
					}
				}()
			}
			wg.Wait()
			thr := e.Register()
			var total uint64
			for _, v := range vars {
				total += spectm.DoRO1(thr, v).Uint()
			}
			if want := uint64(accounts * seedBal); total != want {
				t.Fatalf("conservation broken: total %d, want %d", total, want)
			}
		})
	}
}

// TestPublicAPIRejectsInvalid pins that the constructor refuses
// combinations a layout would silently ignore.
func TestPublicAPIRejectsInvalid(t *testing.T) {
	bad := map[string][]spectm.Option{
		"nocounter-needs-val": {spectm.WithLayout(spectm.LayoutTVar), spectm.WithCC(spectm.CCNoCounter)},
		"orecbits-needs-orec": {spectm.WithLayout(spectm.LayoutVal), spectm.WithOrecBits(8)},
	}
	for name, opts := range bad {
		if _, err := spectm.NewEngine(opts...); err == nil {
			t.Errorf("%s: accepted", name)
		} else {
			t.Logf("%s: %v", name, err)
		}
	}
}

// TestPublicAPIMapRecovery closes a persistent map and reopens it over
// the same directory through the public OpenMap surface.
func TestPublicAPIMapRecovery(t *testing.T) {
	dir := t.TempDir()
	e := spectm.New(spectm.WithLayout(spectm.LayoutVal))
	m, err := spectm.OpenMap(e, dir, spectm.WithPersistence(dir, spectm.FsyncEveryN(1)))
	if err != nil {
		t.Fatal(err)
	}
	th := m.NewThread()
	for i := 0; i < 100; i++ {
		th.Put(fmt.Sprintf("k%d", i), spectm.FromUint(uint64(i)))
	}
	th.Delete("k7")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := spectm.New(spectm.WithLayout(spectm.LayoutVal))
	m2, err := spectm.OpenMap(e2, dir, spectm.WithPersistence(dir, spectm.FsyncEveryN(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	th2 := m2.NewThread()
	if _, ok := th2.Get("k7"); ok {
		t.Fatal("deleted key resurrected by recovery")
	}
	for _, i := range []int{0, 1, 50, 99} {
		v, ok := th2.Get(fmt.Sprintf("k%d", i))
		if !ok || v.Uint() != uint64(i) {
			t.Fatalf("k%d = (%v, %v) after recovery", i, v.Uint(), ok)
		}
	}
}
