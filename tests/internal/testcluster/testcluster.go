// Package testcluster drives real spectm-server processes for the e2e
// suites under tests/: it builds the binary once per test run, starts
// nodes over their own data directories, kills them with a genuine
// SIGKILL, and restarts them in place — the process-level complement to
// the in-process tests in internal/server.
package testcluster

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"spectm/internal/client"
)

var (
	buildOnce sync.Once
	buildErr  error
	binPath   string
)

// repoRoot locates the module root from this source file's path.
func repoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		panic("testcluster: runtime.Caller failed")
	}
	// tests/internal/testcluster/testcluster.go → repo root.
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

// ServerBin builds cmd/spectm-server once per test process and returns
// the binary path.
func ServerBin(t testing.TB) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "spectm-e2e-bin-")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "spectm-server")
		cmd := exec.Command("go", "build", "-o", binPath, "./cmd/spectm-server")
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build ./cmd/spectm-server: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatalf("testcluster: %v", buildErr)
	}
	return binPath
}

// FreeAddr reserves a loopback port and releases it for the server to
// claim. The window between release and claim is racy in principle;
// e2e tests retry readiness, which absorbs the rare collision.
func FreeAddr(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// Config describes one node's process arguments.
type Config struct {
	Addr       string // data-plane listen address ("" = pick a free port)
	DataDir    string // persistence directory ("" = none)
	Fsync      string // -fsync policy ("" = server default)
	ReplListen string // -repl-listen address
	Primary    string // -replica-of address
	Epoch      uint64 // -epoch seed
}

// Node is one running spectm-server process.
type Node struct {
	Cfg  Config
	Addr string

	cmd  *exec.Cmd
	done chan error
	mu   sync.Mutex
}

// Start launches a node and waits until it answers PING.
func Start(t testing.TB, cfg Config) *Node {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = FreeAddr(t)
	}
	n := &Node{Cfg: cfg, Addr: cfg.Addr}
	n.launch(t)
	t.Cleanup(func() { n.Kill() })
	n.WaitReady(t, 10*time.Second)
	return n
}

func (n *Node) args() []string {
	args := []string{"-addr", n.Cfg.Addr}
	if n.Cfg.DataDir != "" {
		args = append(args, "-data-dir", n.Cfg.DataDir)
	}
	if n.Cfg.Fsync != "" {
		args = append(args, "-fsync", n.Cfg.Fsync)
	}
	if n.Cfg.ReplListen != "" {
		args = append(args, "-repl-listen", n.Cfg.ReplListen)
	}
	if n.Cfg.Primary != "" {
		args = append(args, "-replica-of", n.Cfg.Primary)
	}
	if n.Cfg.Epoch != 0 {
		args = append(args, "-epoch", fmt.Sprint(n.Cfg.Epoch))
	}
	return args
}

func (n *Node) launch(t testing.TB) {
	t.Helper()
	cmd := exec.Command(ServerBin(t), n.args()...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start spectm-server: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	n.mu.Lock()
	n.cmd, n.done = cmd, done
	n.mu.Unlock()
}

// WaitReady polls PING until the node answers or the deadline passes.
func (n *Node) WaitReady(t testing.TB, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		c, err := client.Dial(n.Addr, client.WithTimeout(time.Second))
		if err == nil {
			err = c.Ping()
			c.Close()
			if err == nil {
				return
			}
		}
		last = err
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("node %s never became ready: %v", n.Addr, last)
}

// Client dials the node's data plane, closing with the test.
func (n *Node) Client(t testing.TB) *client.Client {
	t.Helper()
	c, err := client.Dial(n.Addr, client.WithTimeout(10*time.Second))
	if err != nil {
		t.Fatalf("dial %s: %v", n.Addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// Kill9 delivers a genuine SIGKILL — no shutdown path runs — and reaps
// the process.
func (n *Node) Kill9(t testing.TB) {
	t.Helper()
	n.mu.Lock()
	cmd, done := n.cmd, n.done
	n.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		t.Fatal("Kill9 on a node that never started")
	}
	syscall.Kill(cmd.Process.Pid, syscall.SIGKILL)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SIGKILLed node did not exit")
	}
}

// Kill is the cleanup path: best-effort SIGKILL + reap, safe to call
// after Kill9.
func (n *Node) Kill() {
	n.mu.Lock()
	cmd, done := n.cmd, n.done
	n.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Kill()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
	}
}

// Restart relaunches the node with its original arguments (same data
// directory, same ports) and waits for readiness.
func (n *Node) Restart(t testing.TB) {
	t.Helper()
	n.launch(t)
	n.WaitReady(t, 10*time.Second)
}
