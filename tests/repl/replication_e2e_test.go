// The replication smoke as a portable Go e2e (formerly a /dev/tcp bash
// job in ci.yml): one primary + two replicas through real processes —
// seed, sustained load, kill -9 one replica, restart it over its data
// directory, then verify both replicas converge behind a WAITOFF gate
// and the primary counts both links again.
package repl_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"spectm/internal/client"
	"spectm/tests/internal/testcluster"
)

func TestReplicationKillRestartConverges(t *testing.T) {
	replAddr := testcluster.FreeAddr(t)
	p := testcluster.Start(t, testcluster.Config{
		DataDir: t.TempDir(), ReplListen: replAddr,
	})
	r1dir := t.TempDir()
	r1 := testcluster.Start(t, testcluster.Config{
		DataDir: r1dir, Primary: replAddr,
	})
	r2 := testcluster.Start(t, testcluster.Config{
		DataDir: t.TempDir(), Primary: replAddr,
	})

	cp := p.Client(t)
	if err := cp.Set("smoke-a", 11); err != nil {
		t.Fatal(err)
	}
	if err := cp.Set("smoke-b", 22); err != nil {
		t.Fatal(err)
	}
	if err := cp.Set("smoke-c", 33); err != nil {
		t.Fatal(err)
	}
	if ok, err := cp.Del("smoke-c"); err != nil || !ok {
		t.Fatalf("DEL smoke-c = (%v, %v)", ok, err)
	}

	// Replicas refuse writes.
	cr1 := r1.Client(t)
	if err := cr1.Set("nope", 1); !client.IsReadOnly(err) {
		t.Fatalf("replica write returned %v, want READONLY", err)
	}

	// Sustained load against the primary.
	for i := 0; i < 200; i++ {
		if err := cp.Set(fmt.Sprintf("load-%d", i%64), uint64(i)); err != nil {
			t.Fatalf("load SET: %v", err)
		}
	}

	// Kill -9 one replica mid-stream and restart it over its data
	// directory (cursor resume or conservative full resync — either must
	// converge).
	r1.Kill9(t)
	r1.Restart(t)

	// More writes after the restart, then take the position token.
	if err := cp.Set("smoke-d", 44); err != nil {
		t.Fatal(err)
	}
	pos, err := cp.ReplPos()
	if err != nil {
		t.Fatal(err)
	}

	// Both replicas: gate on the token, then verify the seeded keys.
	for i, r := range []*testcluster.Node{r1, r2} {
		c := r.Client(t)
		if err := c.WaitOff(pos, 30*time.Second); err != nil {
			t.Fatalf("replica %d catch-up: %v", i+1, err)
		}
		got, err := c.MGet("smoke-a", "smoke-b", "smoke-c", "smoke-d")
		if err != nil {
			t.Fatalf("replica %d MGET: %v", i+1, err)
		}
		if !got[0].OK || got[0].Val != 11 || !got[1].OK || got[1].Val != 22 {
			t.Errorf("replica %d seeded keys: %+v", i+1, got[:2])
		}
		if got[2].OK {
			t.Errorf("replica %d: smoke-c resurrected: %+v", i+1, got[2])
		}
		if !got[3].OK || got[3].Val != 44 {
			t.Errorf("replica %d: post-restart write missing: %+v", i+1, got[3])
		}
	}

	// The primary sees both links again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, err := cp.ReplStatus()
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(status, "replicas 2") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never saw both links again:\n%s", status)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
