// The failover smoke: three seeded nemesis schedules against a real
// three-process cluster. Replicas tail the primary through
// fault-injecting proxies; the seeded schedule partitions, black-holes
// and slows the links mid-traffic; then the primary dies to a genuine
// SIGKILL and the coordinator (client.Failover) promotes the
// most-caught-up replica by epoch-qualified cursor position. After
// every run the oracle verifies the acceptance invariants: no
// acknowledged-durable (confirmed-replicated) write is lost, per-key
// reads stay within the acknowledged prefix, and the survivors converge
// at a bumped epoch. The schedule is a pure function of the seed, so a
// failing interleaving replays bit for bit; the in-process twin with a
// reader thread and finer phases is internal/server's nemesis test.
package failover_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"spectm/internal/client"
	"spectm/internal/nemesis"
	"spectm/tests/internal/testcluster"
)

// ciSeeds are the three schedules CI's failover-smoke job replays;
// -short runs the first only.
var ciSeeds = []int64{0x0D15EA5E, 2, 3}

func TestFailoverNemesisSmoke(t *testing.T) {
	seeds := ciSeeds
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runSeed(t, seed)
		})
	}
}

func runSeed(t *testing.T, seed int64) {
	cfg := nemesis.Config{Targets: 2, Events: 6, Horizon: 500 * time.Millisecond}
	sched := nemesis.Generate(seed, cfg)
	if again := nemesis.Generate(seed, cfg); !reflect.DeepEqual(sched, again) {
		t.Fatalf("schedule for seed %d is not deterministic", seed)
	}

	// A: primary. B, C: promotable replicas dialing A through proxies.
	replAddr := testcluster.FreeAddr(t)
	a := testcluster.Start(t, testcluster.Config{
		DataDir: t.TempDir(), Fsync: "every=4", ReplListen: replAddr,
	})
	pb, err := nemesis.NewProxy("127.0.0.1:0", replAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Close()
	pc, err := nemesis.NewProxy("127.0.0.1:0", replAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	proxies := []*nemesis.Proxy{pb, pc}

	bRepl, cRepl := testcluster.FreeAddr(t), testcluster.FreeAddr(t)
	b := testcluster.Start(t, testcluster.Config{
		DataDir: t.TempDir(), Fsync: "every=4", Primary: pb.Addr(), ReplListen: bRepl,
	})
	c := testcluster.Start(t, testcluster.Config{
		DataDir: t.TempDir(), Fsync: "every=4", Primary: pc.Addr(), ReplListen: cRepl,
	})

	ca, cb, cc := a.Client(t), b.Client(t), c.Client(t)

	// Writers hammer A (per-key monotonic versions) while the nemesis
	// plays the seeded schedule against the replication proxies.
	const nkeys = 4
	keys := make([]string, nkeys)
	acked := make([]uint64, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	playDone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wc := a.Client(t)
		for {
			select {
			case <-playDone:
				return
			default:
			}
			for i, k := range keys {
				if err := wc.Set(k, acked[i]+1); err != nil {
					t.Errorf("SET %s: %v", k, err)
					return
				}
				acked[i]++
			}
			time.Sleep(time.Millisecond)
		}
	}()
	nemesis.Play(sched, func(e nemesis.Event) {
		t.Logf("nemesis @%v: %v target=%d dur=%v", e.At, e.Kind, e.Target, e.Dur)
		proxies[e.Target].Apply(e)
	}, nil)
	close(playDone)
	wg.Wait()

	// Heal, then establish the confirmed frontier: every write below it
	// is on BOTH replicas and must survive the failover.
	pb.Heal()
	pc.Heal()
	pos, err := ca.ReplPos()
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.WaitOff(pos, 30*time.Second); err != nil {
		t.Fatalf("B never reached the frontier: %v", err)
	}
	if err := cc.WaitOff(pos, 30*time.Second); err != nil {
		t.Fatalf("C never reached the frontier: %v", err)
	}
	guaranteed := append([]uint64(nil), acked...)

	// Doomed tail: C's link is black-holed so the tail reaches B at
	// most, then the primary dies to a real SIGKILL mid-stream.
	pc.Blackhole()
	for r := 0; r < 20; r++ {
		for i, k := range keys {
			if err := ca.Set(k, acked[i]+1); err != nil {
				t.Fatalf("tail SET: %v", err)
			}
			acked[i]++
		}
	}
	a.Kill9(t)
	pc.Heal()

	// Automatic promotion over the survivors; the dead primary must end
	// up skipped, and B (holding the tail) must win the cursor race.
	nodes := []client.Node{
		{Addr: a.Addr, ReplAddr: replAddr},
		{Addr: b.Addr, ReplAddr: bRepl},
		{Addr: c.Addr, ReplAddr: cRepl},
	}
	res, err := client.Failover(nodes, client.FailoverConfig{
		CatchUp: 3 * time.Second, Poll: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if res.Promoted != 1 {
		t.Fatalf("promoted node %d, want 1 (B holds the doomed tail): %+v", res.Promoted, res)
	}
	if res.Epoch == 0 {
		t.Fatalf("promotion did not bump the epoch: %+v", res)
	}
	if len(res.Skipped) != 1 || res.Skipped[0] != 0 {
		t.Fatalf("dead primary not skipped: %+v", res)
	}

	// Oracle: per key on the new primary the value is bracketed by
	// [confirmed frontier, last acked] — no confirmed write lost, no
	// phantom, surviving history a prefix of what was acknowledged.
	info, err := cb.Role()
	if err != nil || info.Role != "primary" || info.Epoch != res.Epoch {
		t.Fatalf("new primary ROLE = %+v (%v), want primary at epoch %d", info, err, res.Epoch)
	}
	for i, k := range keys {
		v, ok, err := cb.Get(k)
		if err != nil {
			t.Fatalf("oracle GET %s: %v", k, err)
		}
		if guaranteed[i] > 0 && !ok {
			t.Errorf("%s: confirmed write lost entirely (frontier %d)", k, guaranteed[i])
			continue
		}
		if v < guaranteed[i] || v > acked[i] {
			t.Errorf("%s = %d, want within [%d, %d]", k, v, guaranteed[i], acked[i])
		}
	}

	// Convergence: the loser tails the new primary and matches it.
	if err := cb.Set("epilogue", uint64(seed)); err != nil {
		t.Fatalf("write on promoted primary: %v", err)
	}
	bpos, err := cb.ReplPos()
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.WaitOff(bpos, 30*time.Second); err != nil {
		t.Fatalf("loser never converged on the new primary: %v", err)
	}
	rinfo, err := cc.Role()
	if err != nil || rinfo.Role != "replica" || rinfo.Epoch != res.Epoch {
		t.Fatalf("re-pointed replica ROLE = %+v (%v), want replica at epoch %d", rinfo, err, res.Epoch)
	}
	all := append(append([]string(nil), keys...), "epilogue")
	bvals, err := cb.MGet(all...)
	if err != nil {
		t.Fatal(err)
	}
	cvals, err := cc.MGet(all...)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range all {
		if bvals[i] != cvals[i] {
			t.Errorf("diverged after failover: %s = %+v on B, %+v on C", k, bvals[i], cvals[i])
		}
	}
}
