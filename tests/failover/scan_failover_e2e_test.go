// Scan-under-failover e2e: a real two-process primary/replica pair
// serving SCAN and ISCAN while writes churn, then a genuine SIGKILL of
// the primary and a promotion. After the failover the survivor must
// serve every confirmed-replicated key, in order, at the bumped epoch —
// including through the secondary index, whose definition traveled over
// the replication stream (or the bootstrap snapshot) rather than any
// side channel.
package failover_test

import (
	"fmt"
	"testing"
	"time"

	"spectm/internal/client"
	"spectm/tests/internal/testcluster"
)

func TestScanSurvivesFailover(t *testing.T) {
	seeds := ciSeeds
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runScanFailover(t, seed)
		})
	}
}

func runScanFailover(t *testing.T, seed int64) {
	replAddr := testcluster.FreeAddr(t)
	a := testcluster.Start(t, testcluster.Config{
		DataDir: t.TempDir(), Fsync: "every=4", ReplListen: replAddr,
	})
	bRepl := testcluster.FreeAddr(t)
	b := testcluster.Start(t, testcluster.Config{
		DataDir: t.TempDir(), Fsync: "every=4", Primary: replAddr, ReplListen: bRepl,
	})
	ca, cb := a.Client(t), b.Client(t)

	// Index first, then churn: writes must maintain it live.
	if err := ca.IdxCreate("byval", "value"); err != nil {
		t.Fatalf("IDXCREATE: %v", err)
	}

	// Seeded churn on the primary with interleaved scans: every key's
	// value encodes its index, so scan results are self-validating.
	const nkeys = 64
	val := func(i, round int) uint64 { return uint64(i)<<20 | uint64(round) }
	rounds := 6 + int(uint64(seed)%5)
	for round := 1; round <= rounds; round++ {
		for i := 0; i < nkeys; i++ {
			if err := ca.Set(fmt.Sprintf("k%03d", i), val(i, round)); err != nil {
				t.Fatalf("SET: %v", err)
			}
		}
		ents, err := ca.Scan("k", "l", 0)
		if err != nil {
			t.Fatalf("primary SCAN: %v", err)
		}
		if len(ents) != nkeys {
			t.Fatalf("primary SCAN round %d: %d keys, want %d", round, len(ents), nkeys)
		}
		for i, e := range ents {
			if e.Key != fmt.Sprintf("k%03d", i) || e.Val>>20 != uint64(i) {
				t.Fatalf("primary SCAN round %d: entry %d = %+v", round, i, e)
			}
		}
	}

	// Confirm the frontier: every write above is on the replica.
	pos, err := ca.ReplPos()
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.WaitOff(pos, 30*time.Second); err != nil {
		t.Fatalf("replica never reached the frontier: %v", err)
	}

	// The primary dies for real; the coordinator promotes the survivor.
	a.Kill9(t)
	res, err := client.Failover([]client.Node{
		{Addr: a.Addr, ReplAddr: replAddr},
		{Addr: b.Addr, ReplAddr: bRepl},
	}, client.FailoverConfig{CatchUp: 3 * time.Second, Poll: 25 * time.Millisecond})
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if res.Promoted != 1 || res.Epoch == 0 {
		t.Fatalf("promotion = %+v, want node 1 at a bumped epoch", res)
	}
	info, err := cb.Role()
	if err != nil || info.Role != "primary" || info.Epoch != res.Epoch {
		t.Fatalf("survivor ROLE = %+v (%v), want primary at epoch %d", info, err, res.Epoch)
	}

	// Post-promotion SCAN: every confirmed key present, in order, with
	// the final round's values.
	ents, err := cb.Scan("", "", 0)
	if err != nil {
		t.Fatalf("post-promotion SCAN: %v", err)
	}
	if len(ents) != nkeys {
		t.Fatalf("post-promotion SCAN: %d keys, want %d", len(ents), nkeys)
	}
	for i, e := range ents {
		if want := fmt.Sprintf("k%03d", i); e.Key != want {
			t.Fatalf("post-promotion SCAN[%d] = %q, want %q", i, e.Key, want)
		}
		if e.Val != val(i, rounds) {
			t.Fatalf("post-promotion SCAN[%s] = %d, want %d", e.Key, e.Val, val(i, rounds))
		}
	}

	// The index definition replicated with the data: ISCAN on the new
	// primary finds a key by its value without any re-create.
	lo, hi := fmt.Sprintf("%016x", val(7, rounds)), fmt.Sprintf("%016x", val(7, rounds)+1)
	ients, err := cb.IScan("byval", lo, hi, 0)
	if err != nil {
		t.Fatalf("post-promotion ISCAN: %v", err)
	}
	if len(ients) != 1 || ients[0].Key != "k007" {
		t.Fatalf("post-promotion ISCAN = %+v, want [k007]", ients)
	}

	// The promoted primary keeps maintaining the index for new writes.
	if err := cb.Set("k999", 12345); err != nil {
		t.Fatalf("post-promotion SET: %v", err)
	}
	ients, err = cb.IScan("byval", fmt.Sprintf("%016x", 12345), fmt.Sprintf("%016x", 12346), 0)
	if err != nil || len(ients) != 1 || ients[0].Key != "k999" {
		t.Fatalf("post-promotion index maintenance: %+v (err %v), want [k999]", ients, err)
	}
}
