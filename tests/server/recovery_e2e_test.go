// The recovery smoke as a portable Go e2e (formerly a /dev/tcp bash job
// in ci.yml): kill -9 a persistent server mid-traffic and verify the
// restarted process serves the durable state — the whole durability
// story end to end, through a real process and a real SIGKILL.
package server_test

import (
	"fmt"
	"sync"
	"testing"

	"spectm/tests/internal/testcluster"
)

func TestRecoveryAfterSIGKILL(t *testing.T) {
	dir := t.TempDir()
	n := testcluster.Start(t, testcluster.Config{DataDir: dir, Fsync: "always"})
	c := n.Client(t)

	// Seed known keys; with -fsync always each reply implies the record
	// is on disk.
	if err := c.Set("smoke-a", 11); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("smoke-b", 22); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("smoke-c", 33); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Del("smoke-c"); err != nil || !ok {
		t.Fatalf("DEL smoke-c = (%v, %v)", ok, err)
	}

	// Random-ish traffic on a disjoint key space, then the crash. These
	// writes are acked-durable too, so spot-check a few after restart.
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lc := n.Client(t)
			for i := 0; i < 100; i++ {
				if err := lc.Set(fmt.Sprintf("load-%d-%d", w, i), uint64(i)); err != nil {
					t.Errorf("load SET: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	n.Kill9(t)
	n.Restart(t)

	c2 := n.Client(t)
	got, err := c2.MGet("smoke-a", "smoke-b", "smoke-c")
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].OK || got[0].Val != 11 {
		t.Errorf("smoke-a = %+v, want 11", got[0])
	}
	if !got[1].OK || got[1].Val != 22 {
		t.Errorf("smoke-b = %+v, want 22", got[1])
	}
	if got[2].OK {
		t.Errorf("smoke-c = %+v, want still deleted", got[2])
	}
	for w := 0; w < 2; w++ {
		k := fmt.Sprintf("load-%d-99", w)
		if v, ok, err := c2.Get(k); err != nil || !ok || v != 99 {
			t.Errorf("%s = (%d, %v, %v) after recovery, want 99", k, v, ok, err)
		}
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}

	// Writes keep working over the recovered log.
	if err := c2.Set("post-recovery", 1); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}
