package spectm

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"spectm/internal/core"
)

// TestFacadeQuickstart exercises the whole public surface the way the
// quickstart example does: typed short transactions, a combinator, a
// full transaction and the multi-word primitives against one engine.
func TestFacadeQuickstart(t *testing.T) {
	e := New(WithLayout(LayoutVal))
	thr := e.Register()

	a := e.NewVar(FromUint(100))
	b := e.NewVar(FromUint(0))

	// Typed short transaction: move 30 from a to b atomically.
	d, x, y := thr.ShortRW2(a, b)
	if !d.Valid() {
		t.Fatal("uncontended short txn invalid")
	}
	d.Commit(FromUint(x.Uint()-30), FromUint(y.Uint()+30))

	// Full transaction on the same words.
	ok := thr.Atomic(func() bool {
		av := thr.TxRead(a)
		bv := thr.TxRead(b)
		if !thr.TxOK() {
			return true
		}
		thr.TxWrite(a, FromUint(av.Uint()+5))
		thr.TxWrite(b, FromUint(bv.Uint()-5))
		return true
	})
	if !ok {
		t.Fatal("full txn failed")
	}

	if got := thr.SingleRead(a); got != FromUint(75) {
		t.Fatalf("a = %d, want 75", got.Uint())
	}
	if got := thr.SingleRead(b); got != FromUint(25) {
		t.Fatalf("b = %d, want 25", got.Uint())
	}

	// Multi-word primitives.
	if !DCSS(thr, a, b, FromUint(75), FromUint(25), FromUint(80)) {
		t.Fatal("DCSS failed")
	}
	if !CAS2(thr, a, b, FromUint(80), FromUint(25), FromUint(1), FromUint(2)) {
		t.Fatal("CAS2 failed")
	}

	// Snapshot combinator.
	if xv, yv := DoRO2(thr, a, b); xv != FromUint(1) || yv != FromUint(2) {
		t.Fatalf("DoRO2 = (%d, %d), want (1, 2)", xv.Uint(), yv.Uint())
	}
}

// TestOptionsConstruction covers the options constructor: defaults,
// every knob, and validation failures.
func TestOptionsConstruction(t *testing.T) {
	// Zero options build the default engine.
	if got := New().Layout(); got != LayoutOrec {
		t.Fatalf("default layout = %v, want orec", got)
	}

	e := New(
		WithLayout(LayoutOrec),
		WithCC(CCLocal),
		WithOrecBits(4),
		WithMaxThreads(3),
		WithDebugChecks(),
	)
	cfg := e.Config()
	if cfg.Layout != LayoutOrec || cfg.CC != CCLocal || cfg.OrecBits != 4 ||
		cfg.MaxThreads != 3 || !cfg.Debug {
		t.Fatalf("options not applied: %+v", cfg)
	}

	// CC policies normalize into the engine's internal clock/counter
	// fields (the effective protocol is visible through Config).
	if ec := New(WithCC(CCLocal)); ec.Config().Clock != core.ClockLocal {
		t.Fatalf("WithCC(CCLocal) Clock = %v, want ClockLocal", ec.Config().Clock)
	}
	if ec := New(WithLayout(LayoutVal), WithCC(CCNoCounter)); !ec.Config().ValNoCounter {
		t.Fatal("WithCC(CCNoCounter) did not set ValNoCounter")
	}
	if ec := New(WithLayout(LayoutTVar), WithCC(CCEager), WithSnapshots()); ec.Config().CC != CCEager || !ec.Config().Snapshots {
		t.Fatalf("WithCC/WithSnapshots not applied: %+v", ec.Config())
	}

	for name, opts := range map[string][]Option{
		"negative-threads":  {WithMaxThreads(-1)},
		"orecbits-range":    {WithOrecBits(31)},
		"orecbits-on-val":   {WithLayout(LayoutVal), WithOrecBits(4)},
		"nocounter-on-tvar": {WithLayout(LayoutTVar), WithCC(CCNoCounter)},
		"snapshots-on-val":  {WithLayout(LayoutVal), WithSnapshots()},
		"snapshots-local":   {WithCC(CCLocal), WithSnapshots()},
	} {
		if _, err := NewEngine(opts...); err == nil {
			t.Errorf("%s: NewEngine accepted an invalid configuration", name)
		}
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New did not panic on an invalid configuration")
		}
		if !strings.Contains(r.(string), "MaxThreads") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	New(WithMaxThreads(-5))
}

// TestConfigIntrospection: Engine.Config reports the effective
// configuration as the exported Config alias.
func TestConfigIntrospection(t *testing.T) {
	e := New(WithLayout(LayoutTVar), WithMaxThreads(2))
	var cfg Config = e.Config()
	if cfg.Layout != LayoutTVar || cfg.MaxThreads != 2 {
		t.Fatalf("Config() = %+v, want tvar/2-thread", cfg)
	}
	thr := e.Register()
	v := e.NewVar(FromUint(7))
	if got := DoRO1(thr, v); got != FromUint(7) {
		t.Fatalf("engine read %d, want 7", got.Uint())
	}
}

// TestFacadeNumberedWrappers drives the legacy Figure-2 numbered methods
// through the facade — they are wrappers over the typed descriptors and
// must interoperate with them on the same engine.
func TestFacadeNumberedWrappers(t *testing.T) {
	e := New(WithLayout(LayoutTVar))
	thr := e.Register()
	a := e.NewVar(FromUint(10))
	b := e.NewVar(FromUint(20))

	// Numbered open, numbered commit.
	x := thr.RWRead1(a)
	y := thr.RWRead2(b)
	if !thr.RWValid2() {
		t.Fatal("numbered RW2 invalid")
	}
	thr.RWCommit2(FromUint(x.Uint()+1), FromUint(y.Uint()+1))

	// Numbered RO + upgrade + combined commit (the DCSS shape).
	if thr.RORead1(a) != FromUint(11) || thr.RORead2(b) != FromUint(21) {
		t.Fatal("numbered RO reads wrong values")
	}
	if !thr.UpgradeRO1ToRW1() {
		t.Fatal("upgrade failed uncontended")
	}
	if !thr.CommitRO2RW1(FromUint(100)) {
		t.Fatal("combined commit failed uncontended")
	}
	if thr.SingleRead(a) != FromUint(100) {
		t.Fatal("combined commit did not store")
	}

	// Typed transaction right after, on the same thread and words.
	d, xv := thr.ShortRW1(a)
	if !d.Valid() {
		t.Fatal("typed RW1 invalid after numbered use")
	}
	d.Commit(FromUint(xv.Uint() + 1))
	if thr.SingleRead(a) != FromUint(101) {
		t.Fatal("typed commit did not store")
	}
}

func TestFacadeSet(t *testing.T) {
	for _, v := range SetVariants() {
		if v == "orec-full-g-fine" {
			continue
		}
		s, err := NewSet(SetConfig{Structure: "hash", Variant: v, Buckets: 64})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		th := s.NewThread()
		if !th.Add(7) || !th.Contains(7) || !th.Remove(7) {
			t.Fatalf("%s: set semantics broken", v)
		}
	}
}

func TestFacadeDeque(t *testing.T) {
	e := New(WithLayout(LayoutTVar))
	d := NewDeque(e, 16)
	var wg sync.WaitGroup
	const items = 500
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := d.NewShort(e.Register())
		for i := uint64(1); i <= items; i++ {
			for !q.PushRight(FromUint(i)) {
			}
		}
	}()
	got := make([]uint64, 0, items)
	q := d.NewFull(e.Register())
	for len(got) < items {
		if v, ok := q.PopLeft(); ok {
			got = append(got, v.Uint())
		}
	}
	wg.Wait()
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("FIFO order broken at %d: %d", i, v)
		}
	}
}

func TestFacadeKCSS(t *testing.T) {
	e := New(WithLayout(LayoutOrec))
	thr := e.Register()
	a, b, c := e.NewVar(FromUint(1)), e.NewVar(FromUint(2)), e.NewVar(FromUint(3))
	if !KCSS(thr, []Var{a, b, c}, []Value{FromUint(1), FromUint(2), FromUint(3)}, FromUint(9)) {
		t.Fatal("KCSS failed")
	}
	if thr.SingleRead(a) != FromUint(9) || thr.SingleRead(b) != FromUint(2) {
		t.Fatal("KCSS wrote wrong state")
	}
	if !CAS3(thr, a, b, c, FromUint(9), FromUint(2), FromUint(3), FromUint(1), FromUint(1), FromUint(1)) {
		t.Fatal("CAS3 failed")
	}
	if !CAS4(thr, [4]Var{a, b, c, e.NewVar(FromUint(4))},
		[4]Value{FromUint(1), FromUint(1), FromUint(1), FromUint(4)},
		[4]Value{FromUint(0), FromUint(0), FromUint(0), FromUint(0)}) {
		t.Fatal("CAS4 failed")
	}
}

// TestFacadeMap exercises the sharded transactional map through the
// public API: options, hot-path operations, atomic batch reads, CAS and
// the cross-shard swap, plus concurrent traffic through resizes.
func TestFacadeMap(t *testing.T) {
	e := New(WithLayout(LayoutVal))
	m := NewMap(e, WithShards(4), WithInitialBuckets(2))
	th := m.NewThread()

	if !th.Put("user:1", FromUint(100)) {
		t.Fatal("Put did not insert")
	}
	if th.Put("user:1", FromUint(101)) {
		t.Fatal("Put of existing key claimed insert")
	}
	if v, ok := th.Get("user:1"); !ok || v.Uint() != 101 {
		t.Fatalf("Get = %v,%v", v.Uint(), ok)
	}
	if !th.CompareAndSwap("user:1", FromUint(101), FromUint(102)) {
		t.Fatal("CAS failed")
	}
	th.Put("user:2", FromUint(200))
	if !th.Swap2("user:1", "user:2") {
		t.Fatal("Swap2 failed")
	}
	vals := make([]Value, 2)
	found := make([]bool, 2)
	th.GetBatch([]string{"user:1", "user:2"}, vals, found)
	if !found[0] || !found[1] || vals[0].Uint() != 200 || vals[1].Uint() != 102 {
		t.Fatalf("GetBatch after swap = %v/%v %v/%v", vals[0].Uint(), found[0], vals[1].Uint(), found[1])
	}
	if !th.Delete("user:2") || th.Delete("user:2") {
		t.Fatal("Delete semantics broken")
	}

	// Concurrent writers force resizes through the tiny initial table.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wt := m.NewThread()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("w%d-%04d", id, i)
				wt.Put(key, FromUint(uint64(i)))
				if v, ok := wt.Get(key); !ok || v.Uint() != uint64(i) {
					t.Errorf("lost %s", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if want := 1 + 4*500; m.Len() != want {
		t.Fatalf("Len = %d want %d", m.Len(), want)
	}
}

func TestFacadePersistentMap(t *testing.T) {
	dir := t.TempDir()
	e := New(WithLayout(LayoutVal))
	m, err := OpenMap(e, dir, WithPersistence(dir, FsyncEveryN(8)), WithShards(2))
	if err != nil {
		t.Fatalf("OpenMap: %v", err)
	}
	th := m.NewThread()
	for i := 0; i < 100; i++ {
		th.Put(fmt.Sprintf("k%03d", i), FromUint(uint64(i)))
	}
	th.Delete("k000")
	if err := m.Save(); err != nil { // snapshot + compaction
		t.Fatalf("Save: %v", err)
	}
	th.Put("tail", FromUint(7))
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2, err := OpenMap(New(WithLayout(LayoutVal)), dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	th2 := m2.NewThread()
	if _, ok := th2.Get("k000"); ok {
		t.Fatal("deleted key resurrected")
	}
	if v, ok := th2.Get("k042"); !ok || v.Uint() != 42 {
		t.Fatalf("k042 = %v,%v", v.Uint(), ok)
	}
	if v, ok := th2.Get("tail"); !ok || v.Uint() != 7 {
		t.Fatalf("post-snapshot tail = %v,%v", v.Uint(), ok)
	}
	if m2.Len() != 100 {
		t.Fatalf("Len = %d, want 100", m2.Len())
	}

	// The parse helper round-trips every policy syntax.
	for _, s := range []string{"always", "every=64", "interval=250ms"} {
		if _, err := ParseFsyncPolicy(s); err != nil {
			t.Errorf("ParseFsyncPolicy(%q): %v", s, err)
		}
	}
}
