package spectm

import (
	"sync"
	"testing"
)

// TestFacadeQuickstart exercises the whole public surface the way the
// README's quickstart does.
func TestFacadeQuickstart(t *testing.T) {
	e := New(Config{Layout: LayoutVal})
	thr := e.Register()

	a := e.NewVar(FromUint(100))
	b := e.NewVar(FromUint(0))

	// Short transaction: move 30 from a to b atomically.
	x := thr.RWRead1(a)
	y := thr.RWRead2(b)
	if !thr.RWValid2() {
		t.Fatal("uncontended short txn invalid")
	}
	thr.RWCommit2(FromUint(x.Uint()-30), FromUint(y.Uint()+30))

	// Full transaction on the same words.
	ok := thr.Atomic(func() bool {
		av := thr.TxRead(a)
		bv := thr.TxRead(b)
		if !thr.TxOK() {
			return true
		}
		thr.TxWrite(a, FromUint(av.Uint()+5))
		thr.TxWrite(b, FromUint(bv.Uint()-5))
		return true
	})
	if !ok {
		t.Fatal("full txn failed")
	}

	if got := thr.SingleRead(a); got != FromUint(75) {
		t.Fatalf("a = %d, want 75", got.Uint())
	}
	if got := thr.SingleRead(b); got != FromUint(25) {
		t.Fatalf("b = %d, want 25", got.Uint())
	}

	// Multi-word primitives.
	if !DCSS(thr, a, b, FromUint(75), FromUint(25), FromUint(80)) {
		t.Fatal("DCSS failed")
	}
	if !CAS2(thr, a, b, FromUint(80), FromUint(25), FromUint(1), FromUint(2)) {
		t.Fatal("CAS2 failed")
	}
}

func TestFacadeSet(t *testing.T) {
	for _, v := range SetVariants() {
		if v == "orec-full-g-fine" {
			continue
		}
		s, err := NewSet(SetConfig{Structure: "hash", Variant: v, Buckets: 64})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		th := s.NewThread()
		if !th.Add(7) || !th.Contains(7) || !th.Remove(7) {
			t.Fatalf("%s: set semantics broken", v)
		}
	}
}

func TestFacadeDeque(t *testing.T) {
	e := New(Config{Layout: LayoutTVar})
	d := NewDeque(e, 16)
	var wg sync.WaitGroup
	const items = 500
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := d.NewShort(e.Register())
		for i := uint64(1); i <= items; i++ {
			for !q.PushRight(FromUint(i)) {
			}
		}
	}()
	got := make([]uint64, 0, items)
	q := d.NewFull(e.Register())
	for len(got) < items {
		if v, ok := q.PopLeft(); ok {
			got = append(got, v.Uint())
		}
	}
	wg.Wait()
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("FIFO order broken at %d: %d", i, v)
		}
	}
}

func TestFacadeKCSS(t *testing.T) {
	e := New(Config{Layout: LayoutOrec})
	thr := e.Register()
	a, b, c := e.NewVar(FromUint(1)), e.NewVar(FromUint(2)), e.NewVar(FromUint(3))
	if !KCSS(thr, []Var{a, b, c}, []Value{FromUint(1), FromUint(2), FromUint(3)}, FromUint(9)) {
		t.Fatal("KCSS failed")
	}
	if thr.SingleRead(a) != FromUint(9) || thr.SingleRead(b) != FromUint(2) {
		t.Fatal("KCSS wrote wrong state")
	}
	if !CAS3(thr, a, b, c, FromUint(9), FromUint(2), FromUint(3), FromUint(1), FromUint(1), FromUint(1)) {
		t.Fatal("CAS3 failed")
	}
	if !CAS4(thr, [4]Var{a, b, c, e.NewVar(FromUint(4))},
		[4]Value{FromUint(1), FromUint(1), FromUint(1), FromUint(4)},
		[4]Value{FromUint(0), FromUint(0), FromUint(0), FromUint(0)}) {
		t.Fatal("CAS4 failed")
	}
}
