// Package spectm is a Go implementation of SpecTM — the specialized
// software transactional memory of Dragojević & Harris, "STM in the
// Small: Trading Generality for Performance in Software Transactional
// Memory" (EuroSys 2012) — together with the data structures and
// baselines of the paper's evaluation.
//
// # The engine
//
// An Engine provides transactional words (Var) under one of three
// meta-data layouts (LayoutOrec, LayoutTVar, LayoutVal) and two version
// management strategies (ClockGlobal, ClockLocal). Three APIs operate on
// the same meta-data and can be freely mixed:
//
//   - single-location transactions: Thr.SingleRead, SingleWrite,
//     SingleCAS;
//   - short transactions of statically known size ≤ 4: Thr.RWRead1..4,
//     RWValid*, RWCommit*, RORead1..4, ROValid*, UpgradeRO*ToRW*,
//     CommitRO*RW*;
//   - full transactions: Thr.TxStart/TxRead/TxWrite/TxCommit, or the
//     Thr.Atomic retry wrapper.
//
// # Data structures
//
// NewSet builds the paper's hash-table and skip-list integer sets in any
// of the evaluated variants (sequential, lock-free, orec/tvar/val ×
// full/short × global/local). NewDeque builds the §2 double-ended queue
// in both the traditional and the specialized flavor. DCSS, CAS2–CAS4
// and KCSS are multi-word primitives layered on short transactions.
//
// # Reproduction
//
// cmd/spectm-bench regenerates every figure of the paper's evaluation;
// see DESIGN.md and EXPERIMENTS.md.
package spectm

import (
	"spectm/internal/btree"
	"spectm/internal/core"
	"spectm/internal/deque"
	"spectm/internal/intset"
	"spectm/internal/mwcas"
	"spectm/internal/word"
)

// Value is the 64-bit encoded content of a transactional word. Payloads
// occupy bits 2..63; bit 0 is reserved for the val layout's lock and
// bit 1 is an application-visible mark.
type Value = word.Value

// Null is the zero Value (the paper's NULL).
const Null = word.Null

// MaxPayload is the largest integer a Value can carry.
const MaxPayload = word.MaxPayload

// FromUint encodes an integer payload into a Value.
func FromUint(u uint64) Value { return word.FromUint(u) }

// Engine is a SpecTM instance. Create with New; register each worker
// goroutine with Engine.Register.
type Engine = core.Engine

// Config parametrizes an Engine.
type Config = core.Config

// Layout selects the meta-data organization (paper Fig 3).
type Layout = core.Layout

// ClockMode selects the version-management strategy (§4.1).
type ClockMode = core.ClockMode

// Meta-data layouts and clock modes (see the paper's Fig 3 and §4.1).
const (
	LayoutOrec = core.LayoutOrec
	LayoutTVar = core.LayoutTVar
	LayoutVal  = core.LayoutVal

	ClockGlobal = core.ClockGlobal
	ClockLocal  = core.ClockLocal
)

// MaxShort is the maximum number of locations in a short transaction.
const MaxShort = core.MaxShort

// Thr is a registered thread: the per-thread transaction descriptor.
type Thr = core.Thr

// Var addresses one transactional word.
type Var = core.Var

// Cell is the storage of a transactional word, for embedding in nodes.
type Cell = core.Cell

// Stats counts transaction outcomes per thread.
type Stats = core.Stats

// New creates an engine.
func New(cfg Config) *Engine { return core.New(cfg) }

// Set is a concurrent integer set in one of the paper's variants.
type Set = intset.Set

// SetThread is a per-worker handle on a Set.
type SetThread = intset.Thread

// SetConfig selects a structure ("hash" or "skip") and variant.
type SetConfig = intset.Config

// NewSet builds an integer set; see SetVariants for the variant names.
func NewSet(cfg SetConfig) (Set, error) { return intset.New(cfg) }

// SetVariants lists every set variant of the paper's evaluation.
func SetVariants() []string { return intset.Variants() }

// Deque is the bounded double-ended queue of the paper's §2.
type Deque = deque.D

// DequeShort is the specialized-API accessor flavor.
type DequeShort = deque.Short

// DequeFull is the traditional-API accessor flavor.
type DequeFull = deque.Full

// NewDeque creates a deque with the given capacity on engine e. Attach
// per-thread accessors with Deque.NewShort and Deque.NewFull; the two
// flavors compose on the same deque.
func NewDeque(e *Engine, capacity int) *Deque { return deque.New(e, capacity) }

// BTree is a concurrent uint64→uint64 B-link tree built in SpecTM style:
// leaf operations are 2–3 location short transactions, splits are
// ordinary transactions (the paper's §6 future-work structure).
type BTree = btree.Tree

// BTreeThread is a per-worker handle on a BTree.
type BTreeThread = btree.Thread

// NewBTree creates an empty tree on engine e.
func NewBTree(e *Engine) *BTree { return btree.New(e) }

// DCSS is double-compare-single-swap: if *a1 == o1 and *a2 == o2, store
// n1 into a1. It reports whether the swap happened.
func DCSS(t *Thr, a1, a2 Var, o1, o2, n1 Value) bool { return mwcas.DCSS(t, a1, a2, o1, o2, n1) }

// CAS2 is a 2-location compare-and-swap.
func CAS2(t *Thr, a1, a2 Var, o1, o2, n1, n2 Value) bool {
	return mwcas.CAS2(t, a1, a2, o1, o2, n1, n2)
}

// CAS3 is a 3-location compare-and-swap.
func CAS3(t *Thr, a1, a2, a3 Var, o1, o2, o3, n1, n2, n3 Value) bool {
	return mwcas.CAS3(t, a1, a2, a3, o1, o2, o3, n1, n2, n3)
}

// CAS4 is a 4-location compare-and-swap.
func CAS4(t *Thr, a [4]Var, o, n [4]Value) bool { return mwcas.CAS4(t, a, o, n) }

// KCSS compares 2–4 locations and, when all match, swaps the first.
func KCSS(t *Thr, addrs []Var, olds []Value, n1 Value) bool { return mwcas.KCSS(t, addrs, olds, n1) }
