// Package spectm is a Go implementation of SpecTM — the specialized
// software transactional memory of Dragojević & Harris, "STM in the
// Small: Trading Generality for Performance in Software Transactional
// Memory" (EuroSys 2012) — together with the data structures and
// baselines of the paper's evaluation.
//
// # The engine
//
// An Engine provides transactional words (Var) under one of three
// meta-data layouts (LayoutOrec, LayoutTVar, LayoutVal) and one of five
// concurrency-control policies (CCTimestampExt, CCLazy, CCEager,
// CCLocal, CCNoCounter), selected with options at construction:
//
//	e := spectm.New(spectm.WithLayout(spectm.LayoutVal), spectm.WithCC(spectm.CCNoCounter))
//
// WithSnapshots additionally enables multi-version snapshot reads
// (Thr.SnapshotBegin/SnapshotRead) on versioned layouts, which the
// sharded map uses to serve wide GetBatch and Range on one consistent
// timestamp with zero validation aborts.
//
// Three APIs operate on the same meta-data and can be freely mixed:
//
//   - single-location transactions: Thr.SingleRead, SingleWrite,
//     SingleCAS;
//   - short transactions of statically known size ≤ 4, via typed
//     descriptors whose arity lives in the type: Thr.ShortRW1..4 /
//     ShortRO1..4 openers with Extend, Valid, Commit, Abort, Upgrade
//     and LockRead, plus the DoRW*/DoRO* retry combinators (the
//     numbered Figure-2 methods RWRead1..4, CommitRO*RW*, ... remain as
//     thin wrappers; see DESIGN.md for the correspondence);
//   - full transactions: Thr.TxStart/TxRead/TxWrite/TxCommit, or the
//     Thr.Atomic retry wrapper.
//
// Short-transaction commit and validation paths perform no dynamic
// allocation — the paper's whole premise is that statically sized
// transactions need no dynamic bookkeeping.
//
// # Data structures
//
// NewSet builds the paper's hash-table and skip-list integer sets in any
// of the evaluated variants (sequential, lock-free, orec/tvar/val ×
// full/short × global/local). NewDeque builds the §2 double-ended queue
// in both the traditional and the specialized flavor. DCSS, CAS2–CAS4
// and KCSS are multi-word primitives layered on short transactions.
//
// # Reproduction
//
// cmd/spectm-bench regenerates every figure of the paper's evaluation;
// DESIGN.md documents the architecture and the API migration tables.
package spectm

import (
	"time"

	"spectm/internal/backoff"
	"spectm/internal/btree"
	"spectm/internal/core"
	"spectm/internal/deque"
	"spectm/internal/intset"
	"spectm/internal/mwcas"
	"spectm/internal/shardmap"
	"spectm/internal/wal"
	"spectm/internal/word"
)

// Value is the 64-bit encoded content of a transactional word. Payloads
// occupy bits 2..63; bit 0 is reserved for the val layout's lock and
// bit 1 is an application-visible mark.
type Value = word.Value

// Null is the zero Value (the paper's NULL).
const Null = word.Null

// MaxPayload is the largest integer a Value can carry.
const MaxPayload = word.MaxPayload

// FromUint encodes an integer payload into a Value.
func FromUint(u uint64) Value { return word.FromUint(u) }

// Engine is a SpecTM instance. Create with New; register each worker
// goroutine with Engine.Register.
type Engine = core.Engine

// Config is the engine's effective configuration, as reported by
// Engine.Config. Engines are constructed with New and Option values
// (WithLayout, WithCC, ...), not from a bare Config.
type Config = core.Config

// Layout selects the meta-data organization (paper Fig 3).
type Layout = core.Layout

// CC selects the concurrency-control policy; see WithCC.
type CC = core.CC

// Contention selects the contention-management policy; see
// WithContention.
type Contention = backoff.Policy

// Meta-data layouts, concurrency-control policies and contention-
// management policies (see the paper's Fig 3 and §4.1, WithCC for the
// policy table, and WithContention for the contention table).
const (
	LayoutOrec = core.LayoutOrec
	LayoutTVar = core.LayoutTVar
	LayoutVal  = core.LayoutVal

	CCTimestampExt = core.CCTimestampExt
	CCLazy         = core.CCLazy
	CCEager        = core.CCEager
	CCLocal        = core.CCLocal
	CCNoCounter    = core.CCNoCounter

	CMLinear   = backoff.CMLinear
	CMTwoPhase = backoff.CMTwoPhase
	CMAdaptive = backoff.CMAdaptive
)

// ParseContention maps a contention-policy name ("linear", "twophase",
// "adaptive" — the String values) to its constant.
func ParseContention(name string) (Contention, error) { return backoff.ParsePolicy(name) }

// MaxShort is the maximum number of locations in a short transaction.
const MaxShort = core.MaxShort

// Thr is a registered thread: the per-thread transaction descriptor.
type Thr = core.Thr

// Var addresses one transactional word.
type Var = core.Var

// Cell is the storage of a transactional word, for embedding in nodes.
type Cell = core.Cell

// Stats counts transaction outcomes per thread.
type Stats = core.Stats

// Typed short-transaction descriptors (see DESIGN.md). ShortRWn is an
// open n-location read-write transaction; ShortROn an n-location
// read-only one; ShortROxRWy a combined transaction holding y write
// locks that will validate x read-only entries at commit. Obtain them
// from the Thr.ShortRW*/ShortRO* openers — never construct them
// directly.
type (
	ShortRW1 = core.ShortRW1
	ShortRW2 = core.ShortRW2
	ShortRW3 = core.ShortRW3
	ShortRW4 = core.ShortRW4

	ShortRO1 = core.ShortRO1
	ShortRO2 = core.ShortRO2
	ShortRO3 = core.ShortRO3
	ShortRO4 = core.ShortRO4

	ShortRO1RW1 = core.ShortRO1RW1
	ShortRO1RW2 = core.ShortRO1RW2
	ShortRO1RW3 = core.ShortRO1RW3
	ShortRO2RW1 = core.ShortRO2RW1
	ShortRO2RW2 = core.ShortRO2RW2
	ShortRO3RW1 = core.ShortRO3RW1
	ShortRO3RW2 = core.ShortRO3RW2
	ShortRO4RW1 = core.ShortRO4RW1
)

// DoRW1 runs a 1-location short read-modify-write transaction to
// completion: conflicts retry with backoff, then f receives the stable
// locked value and returns the value to commit (or false to abort, in
// which case DoRW1 reports false).
func DoRW1(t *Thr, a Var, f func(x1 Value) (Value, bool)) bool { return core.DoRW1(t, a, f) }

// DoRW2 runs a 2-location short read-modify-write transaction.
func DoRW2(t *Thr, a, b Var, f func(x1, x2 Value) (Value, Value, bool)) bool {
	return core.DoRW2(t, a, b, f)
}

// DoRW3 runs a 3-location short read-modify-write transaction.
func DoRW3(t *Thr, a, b, c Var, f func(x1, x2, x3 Value) (Value, Value, Value, bool)) bool {
	return core.DoRW3(t, a, b, c, f)
}

// DoRW4 runs a 4-location short read-modify-write transaction.
func DoRW4(t *Thr, a, b, c, d Var, f func(x1, x2, x3, x4 Value) (Value, Value, Value, Value, bool)) bool {
	return core.DoRW4(t, a, b, c, d, f)
}

// DoRO1 returns a validated read of a, retrying on conflicts.
func DoRO1(t *Thr, a Var) Value { return core.DoRO1(t, a) }

// DoRO2 returns a consistent snapshot of two locations.
func DoRO2(t *Thr, a, b Var) (Value, Value) { return core.DoRO2(t, a, b) }

// DoRO3 returns a consistent snapshot of three locations.
func DoRO3(t *Thr, a, b, c Var) (Value, Value, Value) { return core.DoRO3(t, a, b, c) }

// DoRO4 returns a consistent snapshot of four locations.
func DoRO4(t *Thr, a, b, c, d Var) (Value, Value, Value, Value) { return core.DoRO4(t, a, b, c, d) }

// Map is a sharded, resizable, string-keyed transactional hash map whose
// hot paths (Get, Put, Update, Delete, CompareAndSwap, Swap2, 2-key
// GetBatch) are statically sized short transactions; only per-shard
// incremental resize uses full transactions. Create with NewMap, attach
// one MapThread per worker goroutine. cmd/spectm-server serves a Map
// over TCP with a pipelined RESP-like protocol whose commands dispatch
// 1:1 onto these short-transaction paths.
type Map = shardmap.Map

// MapThread is a per-goroutine handle on a Map.
type MapThread = shardmap.Thread

// MapOpStats is a snapshot of map operation counters (per MapThread via
// MapThread.OpStats, aggregated across threads via Map.OpStats).
type MapOpStats = shardmap.OpStats

// MapOption configures a Map under construction.
type MapOption = shardmap.Option

// WithShards sets the map's shard count (rounded up to a power of two;
// default: smallest power of two ≥ GOMAXPROCS, at least 8).
func WithShards(n int) MapOption { return shardmap.WithShards(n) }

// WithInitialBuckets sets each shard's starting bucket count (rounded up
// to a power of two, default 64); shards grow past it on demand.
func WithInitialBuckets(n int) MapOption { return shardmap.WithInitialBuckets(n) }

// NewMap creates a sharded transactional map over engine e. Map
// operations share e's meta-data, so they compose with every other
// transaction on the engine.
func NewMap(e *Engine, opts ...MapOption) *Map { return shardmap.New(e, opts...) }

// FsyncPolicy selects when a persistent map's write-ahead log fsyncs:
// FsyncAlways (every mutation blocks for its group commit), FsyncEveryN
// (at least once every n records) or FsyncInterval (at most every d).
type FsyncPolicy = wal.Policy

// FsyncAlways makes every mutation wait for the group commit covering
// its log record — full durability at fsync-latency cost.
func FsyncAlways() FsyncPolicy { return wal.Always() }

// FsyncEveryN fsyncs at least once every n records; mutations never
// block, a crash can lose up to n acknowledged operations.
func FsyncEveryN(n int) FsyncPolicy { return wal.EveryN(n) }

// FsyncInterval fsyncs at most every d; mutations never block, a crash
// can lose up to d worth of acknowledged operations.
func FsyncInterval(d time.Duration) FsyncPolicy { return wal.Interval(d) }

// ParseFsyncPolicy parses the flag syntax "always", "every=N" or
// "interval=DURATION".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParsePolicy(s) }

// WithPersistence makes the map durable: every committed mutation is
// appended to a per-shard write-ahead log under dir (fsynced per
// policy; the zero FsyncPolicy means interval=1s) and construction
// replays any state already there. NewMap panics if dir cannot be
// opened; OpenMap reports it as an error instead.
func WithPersistence(dir string, policy FsyncPolicy) MapOption {
	return shardmap.WithPersistence(dir, policy)
}

// WithCompactAfter sets the log size (bytes) that triggers an automatic
// snapshot + log compaction on a persistent map (default 128 MiB).
func WithCompactAfter(n int64) MapOption { return shardmap.WithCompactAfter(n) }

// OpenMap creates a persistent map over engine e, recovering whatever
// state dir holds (an empty or absent directory yields an empty map).
// The map's Save method snapshots and compacts the log on demand — the
// serving layer's BGSAVE — and Close flushes and closes it.
func OpenMap(e *Engine, dir string, opts ...MapOption) (*Map, error) {
	return shardmap.Open(e, dir, opts...)
}

// Set is a concurrent integer set in one of the paper's variants.
type Set = intset.Set

// SetThread is a per-worker handle on a Set.
type SetThread = intset.Thread

// SetConfig selects a structure ("hash" or "skip") and variant.
type SetConfig = intset.Config

// NewSet builds an integer set; see SetVariants for the variant names.
func NewSet(cfg SetConfig) (Set, error) { return intset.New(cfg) }

// SetVariants lists every set variant of the paper's evaluation.
func SetVariants() []string { return intset.Variants() }

// Deque is the bounded double-ended queue of the paper's §2.
type Deque = deque.D

// DequeShort is the specialized-API accessor flavor.
type DequeShort = deque.Short

// DequeFull is the traditional-API accessor flavor.
type DequeFull = deque.Full

// NewDeque creates a deque with the given capacity on engine e. Attach
// per-thread accessors with Deque.NewShort and Deque.NewFull; the two
// flavors compose on the same deque.
func NewDeque(e *Engine, capacity int) *Deque { return deque.New(e, capacity) }

// BTree is a concurrent uint64→uint64 B-link tree built in SpecTM style:
// leaf operations are 2–3 location short transactions, splits are
// ordinary transactions (the paper's §6 future-work structure).
type BTree = btree.Tree

// BTreeThread is a per-worker handle on a BTree.
type BTreeThread = btree.Thread

// NewBTree creates an empty tree on engine e.
func NewBTree(e *Engine) *BTree { return btree.New(e) }

// DCSS is double-compare-single-swap: if *a1 == o1 and *a2 == o2, store
// n1 into a1. It reports whether the swap happened.
func DCSS(t *Thr, a1, a2 Var, o1, o2, n1 Value) bool { return mwcas.DCSS(t, a1, a2, o1, o2, n1) }

// CAS2 is a 2-location compare-and-swap.
func CAS2(t *Thr, a1, a2 Var, o1, o2, n1, n2 Value) bool {
	return mwcas.CAS2(t, a1, a2, o1, o2, n1, n2)
}

// CAS3 is a 3-location compare-and-swap.
func CAS3(t *Thr, a1, a2, a3 Var, o1, o2, o3, n1, n2, n3 Value) bool {
	return mwcas.CAS3(t, a1, a2, a3, o1, o2, o3, n1, n2, n3)
}

// CAS4 is a 4-location compare-and-swap.
func CAS4(t *Thr, a [4]Var, o, n [4]Value) bool { return mwcas.CAS4(t, a, o, n) }

// KCSS compares 2–4 locations and, when all match, swaps the first.
func KCSS(t *Thr, addrs []Var, olds []Value, n1 Value) bool { return mwcas.KCSS(t, addrs, olds, n1) }
