// Command spectm-server serves a sharded transactional key-value map
// (spectm.Map) over TCP with a minimal RESP-like pipelined protocol.
// Every wire command executes as a statically sized short transaction;
// see the package README for the protocol grammar and internal/server
// for the command → arity table.
//
// Usage:
//
//	spectm-server -addr 127.0.0.1:6399 -maxconns 256
//	spectm-server -data-dir /var/lib/spectm -fsync interval=100ms
//	spectm-server -data-dir /var/lib/spectm -repl-listen 127.0.0.1:6400
//	spectm-server -addr 127.0.0.1:6401 -replica-of 127.0.0.1:6400
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"spectm/internal/backoff"
	"spectm/internal/core"
	"spectm/internal/server"
	"spectm/internal/wal"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:6399", "listen address")
		maxConns   = flag.Int("maxconns", 256, "maximum concurrent connections")
		shards     = flag.Int("shards", 0, "map shard count (0 = default: ≥ GOMAXPROCS)")
		buckets    = flag.Int("buckets", 0, "initial buckets per shard (0 = default 64)")
		layout     = flag.String("layout", "val", "engine meta-data layout: val, tvar or orec")
		cm         = flag.String("cm", "linear", "contention management: linear, twophase or adaptive")
		pinThreads = flag.Bool("pin-threads", false, "pin each connection goroutine to an OS thread (pairs with shard affinity)")
		dataDir    = flag.String("data-dir", "", "persistence directory: per-shard write-ahead logs + snapshots (empty = in-memory only)")
		fsync      = flag.String("fsync", "interval=1s", "WAL fsync policy: always, every=N or interval=DURATION")
		replListen = flag.String("repl-listen", "", "serve WAL-shipping replication to replicas on this address (requires -data-dir; on a replica, the listener a future PROMOTE will serve)")
		replicaOf  = flag.String("replica-of", "", "run as a read-only replica of the primary whose -repl-listen is at host:port")
		epoch      = flag.Uint64("epoch", 0, "initial cluster epoch (a higher persisted epoch still wins)")
	)
	flag.Parse()

	var l core.Layout
	switch *layout {
	case "val":
		l = core.LayoutVal
	case "tvar":
		l = core.LayoutTVar
	case "orec":
		l = core.LayoutOrec
	default:
		fmt.Fprintf(os.Stderr, "spectm-server: unknown layout %q (known: val, tvar, orec)\n", *layout)
		os.Exit(2)
	}

	policy, err := backoff.ParsePolicy(*cm)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectm-server: %v\n", err)
		os.Exit(2)
	}

	opts := []server.Option{
		server.WithMaxConns(*maxConns),
		server.WithShards(*shards),
		server.WithInitialBuckets(*buckets),
		server.WithLayout(l),
		server.WithContention(policy),
	}
	if *pinThreads {
		opts = append(opts, server.WithLockOSThread())
	}
	if *dataDir != "" {
		policy, err := wal.ParsePolicy(*fsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectm-server: %v\n", err)
			os.Exit(2)
		}
		opts = append(opts, server.WithPersistence(*dataDir, policy))
	}
	opts = append(opts, server.WithTopology(server.Topology{
		Epoch:      *epoch,
		Primary:    *replicaOf,
		ReplListen: *replListen,
	}))

	s, err := server.New(opts...)
	if err != nil {
		log.Fatalf("spectm-server: %v", err)
	}
	if err := s.Listen(*addr); err != nil {
		log.Fatalf("spectm-server: %v", err)
	}
	switch {
	case *replicaOf != "":
		log.Printf("spectm-server: replica of %s, listening on %s (read-only; layout=%s maxconns=%d data-dir=%q)",
			*replicaOf, s.Addr(), *layout, *maxConns, *dataDir)
	case *dataDir != "":
		log.Printf("spectm-server: listening on %s (layout=%s maxconns=%d data-dir=%s fsync=%s, %d keys recovered)",
			s.Addr(), *layout, *maxConns, *dataDir, *fsync, s.Map().Len())
	default:
		log.Printf("spectm-server: listening on %s (layout=%s maxconns=%d)", s.Addr(), *layout, *maxConns)
	}
	if *replListen != "" {
		log.Printf("spectm-server: replication listener on %s", s.ReplAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		<-sig
		log.Printf("spectm-server: shutting down, draining connections")
		if err := s.Shutdown(); err != nil {
			log.Printf("spectm-server: shutdown: %v", err)
		}
		close(drained)
	}()

	if err := s.Serve(); err != server.ErrServerClosed {
		log.Fatalf("spectm-server: %v", err)
	}
	// Serve returns as soon as the listener closes; the drain — and the
	// WAL flush behind it — is still in flight. Exiting now would lose
	// acknowledged writes inside the fsync window.
	<-drained
	log.Printf("spectm-server: bye")
}
