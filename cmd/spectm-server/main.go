// Command spectm-server serves a sharded transactional key-value map
// (spectm.Map) over TCP with a minimal RESP-like pipelined protocol.
// Every wire command executes as a statically sized short transaction;
// see the package README for the protocol grammar and internal/server
// for the command → arity table.
//
// Usage:
//
//	spectm-server -addr 127.0.0.1:6399 -maxconns 256
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"spectm/internal/core"
	"spectm/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:6399", "listen address")
		maxConns = flag.Int("maxconns", 256, "maximum concurrent connections")
		shards   = flag.Int("shards", 0, "map shard count (0 = default: ≥ GOMAXPROCS)")
		buckets  = flag.Int("buckets", 0, "initial buckets per shard (0 = default 64)")
		layout   = flag.String("layout", "val", "engine meta-data layout: val, tvar or orec")
	)
	flag.Parse()

	var l core.Layout
	switch *layout {
	case "val":
		l = core.LayoutVal
	case "tvar":
		l = core.LayoutTVar
	case "orec":
		l = core.LayoutOrec
	default:
		fmt.Fprintf(os.Stderr, "spectm-server: unknown layout %q (known: val, tvar, orec)\n", *layout)
		os.Exit(2)
	}

	s, err := server.New(
		server.WithMaxConns(*maxConns),
		server.WithShards(*shards),
		server.WithInitialBuckets(*buckets),
		server.WithLayout(l),
	)
	if err != nil {
		log.Fatalf("spectm-server: %v", err)
	}
	if err := s.Listen(*addr); err != nil {
		log.Fatalf("spectm-server: %v", err)
	}
	log.Printf("spectm-server: listening on %s (layout=%s maxconns=%d)", s.Addr(), *layout, *maxConns)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("spectm-server: shutting down, draining connections")
		s.Shutdown()
	}()

	if err := s.Serve(); err != server.ErrServerClosed {
		log.Fatalf("spectm-server: %v", err)
	}
	log.Printf("spectm-server: bye")
}
