// Command spectm-lint runs the spectm static-invariant suite: txnescape,
// txnpath, noalloc, atomicdiscipline and walorder (see DESIGN.md,
// "Static invariants").
//
// It runs three ways:
//
//	spectm-lint ./...                     standalone over package patterns
//	go vet -vettool=$(which spectm-lint)  as a vet tool (unit-checker protocol)
//	spectm-lint -record ./src/...         record mode: print findings + counts, exit 0
//
// Standalone and vet mode exit nonzero when any diagnostic survives the
// //lint:ignore suppressions. Record mode is for the CI self-check: it
// runs the suite over its own fixture tree, where findings are the
// expected output, and reports per-analyzer totals.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"spectm/internal/analysis"
	"spectm/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	suite := analyzers.All()

	// cmd/go probes the tool with -V=full before anything else and uses
	// the reply as its cache key.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		analysis.PrintVersion(os.Stdout)
		return 0
	}
	// cmd/go also asks which vet flags the tool supports; the reply is a
	// JSON array of flag descriptions. The suite takes none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}

	fs := flag.NewFlagSet("spectm-lint", flag.ExitOnError)
	record := fs.Bool("record", false, "print all diagnostics and per-analyzer counts; always exit 0")
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: spectm-lint [-record] [package pattern ...]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(which spectm-lint) ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range suite {
			fmt.Printf("%-17s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()

	// Under `go vet -vettool=`, the single argument is a *.cfg file
	// describing one package unit.
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return analysis.UnitCheck(patterns[0], suite, os.Stderr)
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectm-lint: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectm-lint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(suite, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectm-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if *record {
		counts := map[string]int{}
		for _, d := range diags {
			counts[d.Analyzer]++
		}
		names := make([]string, 0, len(counts))
		for n := range counts {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("spectm-lint: %d diagnostics across %d packages\n", len(diags), len(pkgs))
		for _, n := range names {
			fmt.Printf("  %-17s %d\n", n, counts[n])
		}
		return 0
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
