// Command spectm-loadgen drives a spectm-server with closed-loop
// pipelined key-value traffic and reports client-observed throughput,
// in the same machine-readable BenchRecord format as spectm-bench.
//
// Usage:
//
//	spectm-loadgen -addr 127.0.0.1:6399 -conns 8 -pipeline 16 -duration 10s
//	spectm-loadgen -selfserve -conns 4 -json BENCH_net.json
//
// The connection dial retries for a few seconds, so starting the server
// and the load generator simultaneously (as CI does) is safe.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"spectm/internal/figures"
	"spectm/internal/harness"
	"spectm/internal/server"
)

// parseMix parses "get,set,del,cas,swap2,mget[,scan,iscan]"
// percentages; the two scan shares may be omitted (0).
func parseMix(s string) ([8]int, error) {
	var mix [8]int
	parts := strings.Split(s, ",")
	if len(parts) != 6 && len(parts) != 8 {
		return mix, fmt.Errorf("mix %q: want 6 or 8 comma-separated percentages (get,set,del,cas,swap2,mget[,scan,iscan])", s)
	}
	sum := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return mix, fmt.Errorf("mix %q: bad percentage %q", s, p)
		}
		mix[i] = n
		sum += n
	}
	if sum != 100 {
		return mix, fmt.Errorf("mix %q sums to %d, want 100", s, sum)
	}
	return mix, nil
}

func main() {
	var (
		addr      = flag.String("addr", "", "server address (required unless -selfserve)")
		selfserve = flag.Bool("selfserve", false, "start an in-process spectm-server on a loopback port and drive it")
		conns     = flag.Int("conns", 4, "concurrent connections")
		pipeline  = flag.Int("pipeline", 16, "commands in flight per connection")
		keys      = flag.Int("keys", 16384, "distinct key population (preloaded before measuring)")
		duration  = flag.Duration("duration", 5*time.Second, "measurement time")
		dist      = flag.String("dist", "uniform", "key distribution: uniform or zipf")
		mixFlag   = flag.String("mix", "70,20,3,3,2,2", "op mix percentages get,set,del,cas,swap2,mget[,scan,iscan] (sum 100)")
		scanLim   = flag.Int("scanlimit", 32, "SCAN/ISCAN result limit")
		seed      = flag.Uint64("seed", 0, "workload seed (0 = default)")
		jsonPath  = flag.String("json", "", "file for machine-readable benchmark records (optional)")
		name      = flag.String("name", "loadgen", "benchmark record name prefix")
	)
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectm-loadgen: %v\n", err)
		os.Exit(2)
	}
	if *addr == "" && !*selfserve {
		fmt.Fprintf(os.Stderr, "spectm-loadgen: -addr is required (or use -selfserve)\n")
		os.Exit(2)
	}

	target := *addr
	if *selfserve {
		srv, err := server.New(server.WithMaxConns(*conns + 2))
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectm-loadgen: %v\n", err)
			os.Exit(1)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			fmt.Fprintf(os.Stderr, "spectm-loadgen: %v\n", err)
			os.Exit(1)
		}
		go srv.Serve()
		defer srv.Shutdown()
		target = srv.Addr().String()
		fmt.Printf("self-serving on %s\n", target)
	}

	res, err := harness.RunNet(harness.NetWorkload{
		Addr:  target,
		Conns: *conns, Pipeline: *pipeline, Keys: *keys,
		GetPct: mix[0], SetPct: mix[1], DelPct: mix[2],
		CASPct: mix[3], SwapPct: mix[4], MGetPct: mix[5],
		ScanPct: mix[6], IScanPct: mix[7], ScanLim: *scanLim,
		Dist: *dist, Duration: *duration, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectm-loadgen: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("target            %s\n", target)
	fmt.Printf("conns × pipeline  %d × %d\n", *conns, *pipeline)
	fmt.Printf("mix get/set/del/cas/swap2/mget/scan/iscan  %d/%d/%d/%d/%d/%d/%d/%d  dist %s\n",
		mix[0], mix[1], mix[2], mix[3], mix[4], mix[5], mix[6], mix[7], *dist)
	fmt.Printf("ops               %d in %v\n", res.Ops, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput        %.0f ops/s\n", res.OpsPerSec)
	fmt.Printf("client allocs/op  %.3f\n", res.AllocsPerOp)
	fmt.Printf("per command       get %d  set %d  del %d  cas %d  swap2 %d  mget %d  scan %d  iscan %d\n",
		res.Gets, res.Sets, res.Dels, res.CASes, res.Swaps, res.MGets, res.Scans, res.IScans)
	fmt.Printf("errors            %d\n", res.Errors)
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "spectm-loadgen: %d errors during run\n", res.Errors)
		os.Exit(1)
	}

	if *jsonPath != "" {
		records := []figures.BenchRecord{{
			Name:        *name + "/" + *dist,
			Threads:     *conns,
			OpsPerSec:   res.OpsPerSec,
			AllocsPerOp: res.AllocsPerOp,
		}}
		data, err := json.MarshalIndent(records, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectm-loadgen: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d benchmark records to %s\n", len(records), *jsonPath)
	}
}
