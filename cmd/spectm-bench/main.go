// Command spectm-bench regenerates the paper's evaluation figures and
// runs the repository's forward-looking serving workloads.
//
// Usage:
//
//	spectm-bench -figure all -duration 2s -csv out/
//	spectm-bench -figure 6 -threads 1,2,4,8
//	spectm-bench -figure map -duration 25ms -threads 1,2 -json BENCH_smoke.json
//
// Each figure prints the series the paper plots; -figure map runs the
// sharded transactional map under mixed traffic. With -json, every series
// point is also written as a machine-readable record — the file CI
// uploads as the BENCH_smoke.json artifact to track the perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"strconv"
	"strings"
	"time"

	"spectm/internal/figures"
)

// parseThreads parses, sorts and de-duplicates the -threads list.
func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	slices.Sort(out)
	return slices.Compact(out), nil
}

func main() {
	var (
		figure   = flag.String("figure", "all", "figure to regenerate: 1, 5, 6, 7, 8, 9, 10, map, cc, mapping, scan, net, durable, repl, or all")
		duration = flag.Duration("duration", time.Second, "measurement time per experiment point")
		threads  = flag.String("threads", "", "comma-separated thread counts; sorted and de-duplicated (default 1..2*GOMAXPROCS)")
		keyrange = flag.Uint64("keyrange", 65536, "integer-set key range / map key population")
		csvDir   = flag.String("csv", "", "directory for CSV output (optional)")
		jsonPath = flag.String("json", "", "file for machine-readable benchmark records (optional; one {name,threads,ops_per_sec,allocs_per_op} record per series point)")
		seed     = flag.Uint64("seed", 0, "workload seed (0 = default)")
	)
	flag.Parse()

	opts := figures.Options{
		Duration: *duration,
		KeyRange: *keyrange,
		CSVDir:   *csvDir,
		Seed:     *seed,
	}
	if *threads != "" {
		ts, err := parseThreads(*threads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectm-bench: %v\n", err)
			os.Exit(2)
		}
		opts.Threads = ts
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "spectm-bench: %v\n", err)
			os.Exit(1)
		}
	}
	var records []figures.BenchRecord
	if *jsonPath != "" {
		opts.Record = func(r figures.BenchRecord) { records = append(records, r) }
	}

	runners := map[string]func(figures.Options) error{
		"1": figures.Fig1, "5": figures.Fig5, "6": figures.Fig6,
		"7": figures.Fig7, "8": figures.Fig8, "9": figures.Fig9,
		"10": figures.Fig10, "map": figures.FigMap, "cc": figures.FigCC,
		"mapping": figures.FigMapping,
		"scan":    figures.FigScan,
		"net":     figures.FigNet,
		"durable": figures.FigDurable,
		"repl":    figures.FigRepl,
		"all":     figures.All,
	}
	run, ok := runners[*figure]
	if !ok {
		known := make([]string, 0, len(runners))
		for name := range runners {
			known = append(known, name)
		}
		slices.Sort(known)
		fmt.Fprintf(os.Stderr, "spectm-bench: unknown figure %q (known figures: %s)\n",
			*figure, strings.Join(known, ", "))
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "spectm-bench: %v\n", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectm-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d benchmark records to %s\n", len(records), *jsonPath)
	}
}
