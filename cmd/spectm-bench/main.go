// Command spectm-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	spectm-bench -figure all -duration 2s -csv out/
//	spectm-bench -figure 6 -threads 1,2,4,8
//	spectm-bench -figure 5
//
// Each figure prints the series the paper plots; see EXPERIMENTS.md for
// the expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"spectm/internal/figures"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "figure to regenerate: 1, 5, 6, 7, 8, 9, 10, or all")
		duration = flag.Duration("duration", time.Second, "measurement time per experiment point")
		threads  = flag.String("threads", "", "comma-separated thread counts (default 1..2*GOMAXPROCS)")
		keyrange = flag.Uint64("keyrange", 65536, "integer-set key range")
		csvDir   = flag.String("csv", "", "directory for CSV output (optional)")
		seed     = flag.Uint64("seed", 0, "workload seed (0 = default)")
	)
	flag.Parse()

	opts := figures.Options{
		Duration: *duration,
		KeyRange: *keyrange,
		CSVDir:   *csvDir,
		Seed:     *seed,
	}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "spectm-bench: bad thread count %q\n", part)
				os.Exit(2)
			}
			opts.Threads = append(opts.Threads, n)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "spectm-bench: %v\n", err)
			os.Exit(1)
		}
	}

	runners := map[string]func(figures.Options) error{
		"1": figures.Fig1, "5": figures.Fig5, "6": figures.Fig6,
		"7": figures.Fig7, "8": figures.Fig8, "9": figures.Fig9,
		"10": figures.Fig10, "all": figures.All,
	}
	run, ok := runners[*figure]
	if !ok {
		fmt.Fprintf(os.Stderr, "spectm-bench: unknown figure %q\n", *figure)
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "spectm-bench: %v\n", err)
		os.Exit(1)
	}
}
