package main

import (
	"strings"
	"testing"

	"spectm/internal/figures"
)

func mk(recs ...figures.BenchRecord) (map[key]figures.BenchRecord, []key) {
	m := map[key]figures.BenchRecord{}
	var order []key
	for _, r := range recs {
		k := key{r.Name, r.Threads}
		m[k] = r
		order = append(order, k)
	}
	return m, order
}

func TestCompareGate(t *testing.T) {
	base, baseOrder := mk(
		figures.BenchRecord{Name: "map/read-heavy/uniform", Threads: 2, OpsPerSec: 1000, AllocsPerOp: 0.01},
		figures.BenchRecord{Name: "fig1/val-short", Threads: 1, OpsPerSec: 500, AllocsPerOp: 0},
		figures.BenchRecord{Name: "gone", Threads: 1, OpsPerSec: 100},
	)
	cur, curOrder := mk(
		figures.BenchRecord{Name: "map/read-heavy/uniform", Threads: 2, OpsPerSec: 850, AllocsPerOp: 0.01}, // -15%: ok
		figures.BenchRecord{Name: "fig1/val-short", Threads: 1, OpsPerSec: 390, AllocsPerOp: 0},            // -22%: fail
		figures.BenchRecord{Name: "brand-new", Threads: 4, OpsPerSec: 10},
	)
	rows := compare(base, baseOrder, cur, curOrder, 0.20, 0.02, 0)
	got := map[string]row{}
	for _, r := range rows {
		got[r.k.Name] = r
	}
	if r := got["map/read-heavy/uniform"]; r.failing || r.status != "ok" {
		t.Errorf("15%% drop should pass, got %+v", r)
	}
	if r := got["fig1/val-short"]; !r.failing || !strings.Contains(r.status, "ops/s") {
		t.Errorf("22%% drop should fail, got %+v", r)
	}
	if r := got["gone"]; r.failing || r.status != "missing" {
		t.Errorf("missing point must warn, not fail: %+v", r)
	}
	if r := got["brand-new"]; r.failing || r.status != "new" {
		t.Errorf("new point must not fail: %+v", r)
	}
}

func TestCompareAllocGate(t *testing.T) {
	base, baseOrder := mk(
		figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 100, AllocsPerOp: 0.00},
		figures.BenchRecord{Name: "b", Threads: 1, OpsPerSec: 100, AllocsPerOp: 0.50},
	)
	cur, curOrder := mk(
		figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 100, AllocsPerOp: 0.30}, // +0.30: fail
		figures.BenchRecord{Name: "b", Threads: 1, OpsPerSec: 100, AllocsPerOp: 0.51}, // within slack
	)
	rows := compare(base, baseOrder, cur, curOrder, 0.20, 0.02, 0)
	if !rows[0].failing || !strings.Contains(rows[0].status, "allocs") {
		t.Errorf("alloc increase should fail, got %+v", rows[0])
	}
	if rows[1].failing {
		t.Errorf("alloc jitter within slack should pass, got %+v", rows[1])
	}
}

func TestMarkdownWarnsMissingAndExtra(t *testing.T) {
	base, baseOrder := mk(
		figures.BenchRecord{Name: "kept", Threads: 1, OpsPerSec: 100},
		figures.BenchRecord{Name: "dropped/bench", Threads: 2, OpsPerSec: 100},
		figures.BenchRecord{Name: "dropped/bench", Threads: 4, OpsPerSec: 100},
	)
	cur, curOrder := mk(
		figures.BenchRecord{Name: "kept", Threads: 1, OpsPerSec: 100},
		figures.BenchRecord{Name: "added/bench", Threads: 1, OpsPerSec: 50},
	)
	rows := compare(base, baseOrder, cur, curOrder, 0.20, 0.02, 0)
	md := markdown(rows, 0.20)
	for _, want := range []string{
		"missing from the current run",
		"dropped/bench@2", "dropped/bench@4",
		"not in the baseline",
		"added/bench@1",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	if strings.Contains(md, "kept@1") {
		t.Errorf("matched point must not be warned about:\n%s", md)
	}
}

// TestStrictCoversCCNamespace pins that the comparison and the -strict
// warning lines are namespace-generic: cc/* records (the concurrency-
// control figure) gate and warn exactly like the older namespaces.
func TestStrictCoversCCNamespace(t *testing.T) {
	base, baseOrder := mk(
		figures.BenchRecord{Name: "cc/ext/read-heavy/zipf", Threads: 4, OpsPerSec: 1_000_000, AllocsPerOp: 0},
		figures.BenchRecord{Name: "cc/eager/write-heavy/uniform", Threads: 4, OpsPerSec: 800_000, AllocsPerOp: 0},
	)
	cur, curOrder := mk(
		figures.BenchRecord{Name: "cc/ext/read-heavy/zipf", Threads: 4, OpsPerSec: 500_000, AllocsPerOp: 0}, // -50%: fail
		figures.BenchRecord{Name: "cc/lazy/read-heavy/zipf", Threads: 4, OpsPerSec: 900_000, AllocsPerOp: 0},
	)
	rows := compare(base, baseOrder, cur, curOrder, 0.20, 0.02, 0)
	got := map[string]row{}
	for _, r := range rows {
		got[r.k.Name] = r
	}
	if r := got["cc/ext/read-heavy/zipf"]; !r.failing {
		t.Errorf("cc/* regression must gate: %+v", r)
	}
	md := markdown(rows, 0.20)
	for _, want := range []string{
		"cc/eager/write-heavy/uniform@4", // missing warning
		"cc/lazy/read-heavy/zipf@4",      // new-point warning
	} {
		if !strings.Contains(md, want) {
			t.Errorf("warning lines missing %q:\n%s", want, md)
		}
	}
	if _, _, _, exit := verdict(rows, true); !exit {
		t.Errorf("-strict must fail on cc/* missing/extra points")
	}
}

func TestMarkdownNoWarningsWhenAligned(t *testing.T) {
	base, baseOrder := mk(figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 100})
	cur, curOrder := mk(figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 101})
	md := markdown(compare(base, baseOrder, cur, curOrder, 0.20, 0.02, 0), 0.20)
	if strings.Contains(md, "⚠") {
		t.Errorf("aligned runs must produce no warnings:\n%s", md)
	}
}

func TestVerdictStrict(t *testing.T) {
	base, baseOrder := mk(
		figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 100},
		figures.BenchRecord{Name: "gone", Threads: 1, OpsPerSec: 100},
	)
	cur, curOrder := mk(
		figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 100},
		figures.BenchRecord{Name: "fresh", Threads: 1, OpsPerSec: 100},
	)
	rows := compare(base, baseOrder, cur, curOrder, 0.20, 0.02, 0)

	failed, missing, extra, exit := verdict(rows, false)
	if failed != 0 || missing != 1 || extra != 1 || exit {
		t.Errorf("lenient verdict = (%d,%d,%d,%v), want (0,1,1,false)", failed, missing, extra, exit)
	}
	if _, _, _, exit := verdict(rows, true); !exit {
		t.Errorf("-strict must fail on missing/extra points")
	}

	// Aligned runs pass even under -strict.
	okRows := compare(base, baseOrder, base, baseOrder, 0.20, 0.02, 0)
	if _, _, _, exit := verdict(okRows, true); exit {
		t.Errorf("-strict must pass when runs align")
	}

	// Regressions fail regardless of strictness.
	reg, regOrder := mk(
		figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 10},
		figures.BenchRecord{Name: "gone", Threads: 1, OpsPerSec: 100},
	)
	regRows := compare(base, baseOrder, reg, regOrder, 0.20, 0.02, 0)
	if failed, _, _, exit := verdict(regRows, false); failed != 1 || !exit {
		t.Errorf("regression verdict = (%d,%v), want (1,true)", failed, exit)
	}
}

func TestMarkdownShape(t *testing.T) {
	base, baseOrder := mk(figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 200, AllocsPerOp: 0})
	cur, curOrder := mk(figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 100, AllocsPerOp: 0})
	md := markdown(compare(base, baseOrder, cur, curOrder, 0.20, 0.02, 0), 0.20)
	for _, want := range []string{"| a | 1 |", "-50.0%", "**REGRESSION: ops/s**", "| benchmark |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestMinGateOpsExemptsFsyncBoundPoints(t *testing.T) {
	base, baseOrder := mk(
		figures.BenchRecord{Name: "durable/always", Threads: 1, OpsPerSec: 2500, AllocsPerOp: 0.02},
		figures.BenchRecord{Name: "map/mixed/zipf", Threads: 1, OpsPerSec: 2_000_000, AllocsPerOp: 0},
	)
	cur, curOrder := mk(
		figures.BenchRecord{Name: "durable/always", Threads: 1, OpsPerSec: 500, AllocsPerOp: 0.02}, // -80%: disk, not code
		figures.BenchRecord{Name: "map/mixed/zipf", Threads: 1, OpsPerSec: 1_000_000, AllocsPerOp: 0},
	)
	rows := compare(base, baseOrder, cur, curOrder, 0.20, 0.02, 100_000)
	got := map[string]row{}
	for _, r := range rows {
		got[r.k.Name] = r
	}
	if r := got["durable/always"]; r.failing {
		t.Errorf("fsync-bound point below min-gate-ops must not fail on ops/s: %+v", r)
	}
	if r := got["map/mixed/zipf"]; !r.failing {
		t.Errorf("CPU-bound point must still gate: %+v", r)
	}
	// Allocs are gated regardless of the ops/s exemption.
	allocCur, allocOrder := mk(
		figures.BenchRecord{Name: "durable/always", Threads: 1, OpsPerSec: 2500, AllocsPerOp: 0.50},
		figures.BenchRecord{Name: "map/mixed/zipf", Threads: 1, OpsPerSec: 2_000_000, AllocsPerOp: 0},
	)
	rows = compare(base, baseOrder, allocCur, allocOrder, 0.20, 0.02, 100_000)
	if !rows[0].failing {
		t.Errorf("alloc regression on an exempt point must still fail: %+v", rows[0])
	}
}
