package main

import (
	"strings"
	"testing"

	"spectm/internal/figures"
)

func mk(recs ...figures.BenchRecord) (map[key]figures.BenchRecord, []key) {
	m := map[key]figures.BenchRecord{}
	var order []key
	for _, r := range recs {
		k := key{r.Name, r.Threads}
		m[k] = r
		order = append(order, k)
	}
	return m, order
}

func TestCompareGate(t *testing.T) {
	base, baseOrder := mk(
		figures.BenchRecord{Name: "map/read-heavy/uniform", Threads: 2, OpsPerSec: 1000, AllocsPerOp: 0.01},
		figures.BenchRecord{Name: "fig1/val-short", Threads: 1, OpsPerSec: 500, AllocsPerOp: 0},
		figures.BenchRecord{Name: "gone", Threads: 1, OpsPerSec: 100},
	)
	cur, curOrder := mk(
		figures.BenchRecord{Name: "map/read-heavy/uniform", Threads: 2, OpsPerSec: 850, AllocsPerOp: 0.01}, // -15%: ok
		figures.BenchRecord{Name: "fig1/val-short", Threads: 1, OpsPerSec: 390, AllocsPerOp: 0},            // -22%: fail
		figures.BenchRecord{Name: "brand-new", Threads: 4, OpsPerSec: 10},
	)
	rows := compare(base, baseOrder, cur, curOrder, 0.20, 0.02)
	got := map[string]row{}
	for _, r := range rows {
		got[r.k.Name] = r
	}
	if r := got["map/read-heavy/uniform"]; r.failing || r.status != "ok" {
		t.Errorf("15%% drop should pass, got %+v", r)
	}
	if r := got["fig1/val-short"]; !r.failing || !strings.Contains(r.status, "ops/s") {
		t.Errorf("22%% drop should fail, got %+v", r)
	}
	if r := got["gone"]; r.failing || r.status != "missing" {
		t.Errorf("missing point must warn, not fail: %+v", r)
	}
	if r := got["brand-new"]; r.failing || r.status != "new" {
		t.Errorf("new point must not fail: %+v", r)
	}
}

func TestCompareAllocGate(t *testing.T) {
	base, baseOrder := mk(
		figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 100, AllocsPerOp: 0.00},
		figures.BenchRecord{Name: "b", Threads: 1, OpsPerSec: 100, AllocsPerOp: 0.50},
	)
	cur, curOrder := mk(
		figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 100, AllocsPerOp: 0.30}, // +0.30: fail
		figures.BenchRecord{Name: "b", Threads: 1, OpsPerSec: 100, AllocsPerOp: 0.51}, // within slack
	)
	rows := compare(base, baseOrder, cur, curOrder, 0.20, 0.02)
	if !rows[0].failing || !strings.Contains(rows[0].status, "allocs") {
		t.Errorf("alloc increase should fail, got %+v", rows[0])
	}
	if rows[1].failing {
		t.Errorf("alloc jitter within slack should pass, got %+v", rows[1])
	}
}

func TestMarkdownShape(t *testing.T) {
	base, baseOrder := mk(figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 200, AllocsPerOp: 0})
	cur, curOrder := mk(figures.BenchRecord{Name: "a", Threads: 1, OpsPerSec: 100, AllocsPerOp: 0})
	md := markdown(compare(base, baseOrder, cur, curOrder, 0.20, 0.02), 0.20)
	for _, want := range []string{"| a | 1 |", "-50.0%", "**REGRESSION: ops/s**", "| benchmark |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
