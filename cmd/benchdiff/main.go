// Command benchdiff is the CI benchmark-regression gate: it compares
// one or more current BenchRecord files (the -json output of
// spectm-bench / spectm-loadgen) against a checked-in baseline and
// fails — exit status 1 — when any series point lost more than
// -max-drop of its ops/sec or increased its allocs/op. It always prints
// a markdown delta table (CI appends it to the job summary).
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json BENCH_fig1.json BENCH_map.json
//	benchdiff -baseline BENCH_baseline.json -max-drop 0.20 -md summary.md current.json
//	benchdiff -update -baseline BENCH_baseline.json current.json   # refresh baseline
//
// Records are matched by (name, threads). Points present only in the
// current run are reported as "new", points present only in the
// baseline as "missing"; both are listed in warning lines under the
// markdown table so a silently renamed or dropped benchmark is visible
// in the job summary. By default neither fails the gate (removing a
// benchmark should not hard-fail a refactor); -strict turns any
// missing or extra name into a failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"spectm/internal/figures"
)

// key identifies one benchmark point across runs.
type key struct {
	Name    string
	Threads int
}

func load(path string) (map[key]figures.BenchRecord, []key, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var recs []figures.BenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[key]figures.BenchRecord, len(recs))
	var order []key
	for _, r := range recs {
		k := key{r.Name, r.Threads}
		if _, dup := m[k]; !dup {
			order = append(order, k)
		}
		m[k] = r
	}
	return m, order, nil
}

// row is one line of the delta table.
type row struct {
	k       key
	base    *figures.BenchRecord
	cur     *figures.BenchRecord
	status  string
	failing bool
}

// compare joins baseline and current points and applies the gate.
// Points whose baseline throughput is below minGateOps are exempt from
// the ops/s check (their allocs are still gated): fsync-latency-bound
// series like durable/always measure the disk, not the code, and would
// flap a relative gate across runner hardware.
func compare(base map[key]figures.BenchRecord, baseOrder []key,
	cur map[key]figures.BenchRecord, curOrder []key,
	maxDrop, allocSlack, minGateOps float64) []row {

	var rows []row
	for _, k := range baseOrder {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			rows = append(rows, row{k: k, base: &b, status: "missing"})
			continue
		}
		r := row{k: k, base: &b, cur: &c, status: "ok"}
		if b.OpsPerSec > 0 && c.OpsPerSec < b.OpsPerSec*(1-maxDrop) {
			if b.OpsPerSec >= minGateOps {
				r.status = "REGRESSION: ops/s"
				r.failing = true
			} else {
				r.status = "ok (ops/s not gated)"
			}
		}
		if c.AllocsPerOp > b.AllocsPerOp+allocSlack {
			if r.failing {
				r.status = "REGRESSION: ops/s + allocs"
			} else {
				r.status = "REGRESSION: allocs/op"
			}
			r.failing = true
		}
		rows = append(rows, r)
	}
	for _, k := range curOrder {
		if _, ok := base[k]; !ok {
			c := cur[k]
			rows = append(rows, row{k: k, cur: &c, status: "new"})
		}
	}
	return rows
}

// markdown renders the delta table plus warning lines naming every
// point present on only one side of the comparison.
func markdown(rows []row, maxDrop float64) string {
	out := fmt.Sprintf("### benchdiff (gate: >%.0f%% ops/s drop or allocs/op increase)\n\n", maxDrop*100)
	out += "| benchmark | threads | base ops/s | cur ops/s | Δ ops/s | base allocs | cur allocs | status |\n"
	out += "|---|---:|---:|---:|---:|---:|---:|---|\n"
	for _, r := range rows {
		num := func(p *figures.BenchRecord, f func(figures.BenchRecord) string) string {
			if p == nil {
				return "—"
			}
			return f(*p)
		}
		delta := "—"
		if r.base != nil && r.cur != nil && r.base.OpsPerSec > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(r.cur.OpsPerSec/r.base.OpsPerSec-1))
		}
		status := r.status
		if r.failing {
			status = "**" + status + "**"
		}
		out += fmt.Sprintf("| %s | %d | %s | %s | %s | %s | %s | %s |\n",
			r.k.Name, r.k.Threads,
			num(r.base, func(x figures.BenchRecord) string { return fmt.Sprintf("%.0f", x.OpsPerSec) }),
			num(r.cur, func(x figures.BenchRecord) string { return fmt.Sprintf("%.0f", x.OpsPerSec) }),
			delta,
			num(r.base, func(x figures.BenchRecord) string { return fmt.Sprintf("%.3f", x.AllocsPerOp) }),
			num(r.cur, func(x figures.BenchRecord) string { return fmt.Sprintf("%.3f", x.AllocsPerOp) }),
			status)
	}
	if missing := namesWithStatus(rows, "missing"); len(missing) > 0 {
		out += fmt.Sprintf("\n⚠️ **missing from the current run** (in baseline only): %s\n",
			strings.Join(missing, ", "))
	}
	if extra := namesWithStatus(rows, "new"); len(extra) > 0 {
		out += fmt.Sprintf("\n⚠️ **not in the baseline** (new in this run): %s\n",
			strings.Join(extra, ", "))
	}
	return out
}

// namesWithStatus lists "name@threads" for every row with the status.
func namesWithStatus(rows []row, status string) []string {
	var names []string
	for _, r := range rows {
		if r.status == status {
			names = append(names, fmt.Sprintf("%s@%d", r.k.Name, r.k.Threads))
		}
	}
	return names
}

// verdict applies the exit policy: regressions always fail; missing and
// extra points fail only under -strict.
func verdict(rows []row, strict bool) (failed, missing, extra int, exit bool) {
	for _, r := range rows {
		switch {
		case r.failing:
			failed++
		case r.status == "missing":
			missing++
		case r.status == "new":
			extra++
		}
	}
	exit = failed > 0 || (strict && missing+extra > 0)
	return
}

func main() {
	var (
		baseline   = flag.String("baseline", "BENCH_baseline.json", "checked-in baseline records")
		maxDrop    = flag.Float64("max-drop", 0.20, "maximum tolerated fractional ops/s drop")
		allocSlack = flag.Float64("alloc-slack", 0.02, "tolerated allocs/op increase (absolute)")
		mdPath     = flag.String("md", "", "also write the markdown table to this file")
		update     = flag.Bool("update", false, "merge current records into the baseline file instead of gating")
		strict     = flag.Bool("strict", false, "also fail when baseline points are missing from the current run or vice versa")
		minGateOps = flag.Float64("min-gate-ops", 0, "exempt points whose baseline ops/s is below this from the ops/s gate (fsync-latency-bound series; allocs still gated)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no current record files given")
		os.Exit(2)
	}

	cur := map[key]figures.BenchRecord{}
	var curOrder []key
	for _, path := range flag.Args() {
		m, order, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		for _, k := range order {
			if _, dup := cur[k]; !dup {
				curOrder = append(curOrder, k)
			}
			cur[k] = m[k]
		}
	}

	if *update {
		base, baseOrder, err := load(*baseline)
		if err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		if base == nil {
			base = map[key]figures.BenchRecord{}
		}
		for _, k := range curOrder {
			if _, ok := base[k]; !ok {
				baseOrder = append(baseOrder, k)
			}
			base[k] = cur[k]
		}
		merged := make([]figures.BenchRecord, 0, len(baseOrder))
		for _, k := range baseOrder {
			merged = append(merged, base[k])
		}
		slices.SortStableFunc(merged, func(a, b figures.BenchRecord) int {
			if a.Name != b.Name {
				if a.Name < b.Name {
					return -1
				}
				return 1
			}
			return a.Threads - b.Threads
		})
		data, err := json.MarshalIndent(merged, "", "  ")
		if err == nil {
			err = os.WriteFile(*baseline, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: writing %s: %v\n", *baseline, err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: wrote %d records to %s\n", len(merged), *baseline)
		return
	}

	base, baseOrder, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	rows := compare(base, baseOrder, cur, curOrder, *maxDrop, *allocSlack, *minGateOps)
	md := markdown(rows, *maxDrop)
	fmt.Print(md)
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: writing %s: %v\n", *mdPath, err)
			os.Exit(2)
		}
	}

	failed, missing, extra, exit := verdict(rows, *strict)
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: %d baseline point(s) missing from the current run\n", missing)
	}
	if extra > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: %d point(s) not present in the baseline\n", extra)
	}
	if exit {
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) against %s\n", failed, *baseline)
		} else {
			fmt.Fprintf(os.Stderr, "benchdiff: -strict: %d missing and %d extra point(s)\n", missing, extra)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: gate green (%d points compared)\n", len(rows)-missing-extra)
}
